#include "ir/op_type.hpp"

namespace veriqc {

std::string toString(const OpType type) {
  switch (type) {
  case OpType::None:
    return "none";
  case OpType::I:
    return "id";
  case OpType::H:
    return "h";
  case OpType::X:
    return "x";
  case OpType::Y:
    return "y";
  case OpType::Z:
    return "z";
  case OpType::S:
    return "s";
  case OpType::Sdg:
    return "sdg";
  case OpType::T:
    return "t";
  case OpType::Tdg:
    return "tdg";
  case OpType::SX:
    return "sx";
  case OpType::SXdg:
    return "sxdg";
  case OpType::RX:
    return "rx";
  case OpType::RY:
    return "ry";
  case OpType::RZ:
    return "rz";
  case OpType::P:
    return "p";
  case OpType::U2:
    return "u2";
  case OpType::U3:
    return "u3";
  case OpType::SWAP:
    return "swap";
  case OpType::Barrier:
    return "barrier";
  case OpType::Measure:
    return "measure";
  }
  return "unknown";
}

bool isSingleTargetType(const OpType type) noexcept {
  switch (type) {
  case OpType::I:
  case OpType::H:
  case OpType::X:
  case OpType::Y:
  case OpType::Z:
  case OpType::S:
  case OpType::Sdg:
  case OpType::T:
  case OpType::Tdg:
  case OpType::SX:
  case OpType::SXdg:
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::P:
  case OpType::U2:
  case OpType::U3:
    return true;
  default:
    return false;
  }
}

std::size_t numParameters(const OpType type) noexcept {
  switch (type) {
  case OpType::RX:
  case OpType::RY:
  case OpType::RZ:
  case OpType::P:
    return 1;
  case OpType::U2:
    return 2;
  case OpType::U3:
    return 3;
  default:
    return 0;
  }
}

bool isDiagonalType(const OpType type) noexcept {
  switch (type) {
  case OpType::I:
  case OpType::Z:
  case OpType::S:
  case OpType::Sdg:
  case OpType::T:
  case OpType::Tdg:
  case OpType::RZ:
  case OpType::P:
    return true;
  default:
    return false;
  }
}

} // namespace veriqc
