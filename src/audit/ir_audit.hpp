/// \file ir_audit.hpp
/// \brief Structural auditors for the circuit IR.
///
/// These validate operations, permutations and whole circuits *without*
/// throwing on the first problem (unlike Operation::validate): every
/// violation becomes an AuditFinding, so `veriqc_lint` can report all
/// problems of a file in one pass.
///
/// Finding codes:
///   ir.op.alias          control/target qubit listed twice in one operation
///   ir.op.range          qubit index out of range for the circuit width
///   ir.op.arity          wrong target or parameter count for the gate type
///   ir.op.param          non-finite gate parameter
///   ir.op.type           operation of type None
///   ir.perm.size         permutation size differs from the circuit width
///   ir.perm.bijection    permutation map is not a bijection on {0..n-1}
///   ir.phase.nonfinite   non-finite circuit global phase
///   ir.invert.roundtrip  invert() round-trip mismatch
#pragma once

#include "audit/finding.hpp"
#include "ir/circuit.hpp"
#include "ir/operation.hpp"
#include "ir/permutation.hpp"

#include <cstddef>
#include <string>

namespace veriqc::audit {

/// Audits one operation against a circuit width of `nqubits`.
[[nodiscard]] AuditReport auditOperation(const Operation& op,
                                         std::size_t nqubits,
                                         const std::string& location = {});

/// Audits a permutation: bijectivity on {0..n-1} and, when `nqubits` is
/// nonzero, that its size matches the circuit width.
[[nodiscard]] AuditReport auditPermutation(const Permutation& perm,
                                           std::size_t nqubits = 0,
                                           const std::string& location = {});

/// Audits a whole circuit: every operation, both layout permutations and the
/// global phase.
[[nodiscard]] AuditReport auditCircuit(const QuantumCircuit& circuit);

/// Audits invert() round-trip consistency: inverted() must reverse the gate
/// list with each gate the inverse of its source (checked via isInverseOf),
/// exchange the layout permutations, negate the global phase, and
/// inverted().inverted() must reproduce the original gate list. Skipped with
/// an Info finding when the circuit contains non-invertible operations.
[[nodiscard]] AuditReport auditInvertRoundTrip(const QuantumCircuit& circuit,
                                               double tolerance = 1e-12);

} // namespace veriqc::audit
