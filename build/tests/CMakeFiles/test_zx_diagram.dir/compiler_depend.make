# Empty compiler generated dependencies file for test_zx_diagram.
# This may be replaced when dependencies are built.
