#include "circuits/error_injection.hpp"

#include <vector>

namespace veriqc::circuits {

std::optional<QuantumCircuit> removeRandomGate(const QuantumCircuit& circuit,
                                               std::mt19937_64& rng) {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    if (!circuit.ops()[i].isNonUnitary()) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  const std::size_t victim = candidates[pick(rng)];
  QuantumCircuit result = circuit;
  result.setName(circuit.name() + "_gate_missing");
  result.ops().erase(result.ops().begin() + static_cast<std::ptrdiff_t>(victim));
  return result;
}

std::optional<QuantumCircuit> flipRandomCnot(const QuantumCircuit& circuit,
                                             std::mt19937_64& rng) {
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const auto& op = circuit.ops()[i];
    if (op.type == OpType::X && op.controls.size() == 1) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
  const std::size_t victim = candidates[pick(rng)];
  QuantumCircuit result = circuit;
  result.setName(circuit.name() + "_flipped_cnot");
  auto& op = result.ops()[victim];
  std::swap(op.controls[0], op.targets[0]);
  return result;
}

} // namespace veriqc::circuits
