#include "zx/extract.hpp"

#include "zx/simplify.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace veriqc::zx {

namespace {

/// GF(2) matrix with row-operation recording.
class BitMatrix {
public:
  BitMatrix(const std::size_t rows, const std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows, std::vector<bool>(cols, false)) {}

  void set(const std::size_t r, const std::size_t c, const bool value) {
    data_[r][c] = value;
  }
  [[nodiscard]] bool get(const std::size_t r, const std::size_t c) const {
    return data_[r][c];
  }

  /// Row r1 ^= row r2 (recorded).
  void rowAdd(const std::size_t r1, const std::size_t r2) {
    for (std::size_t c = 0; c < cols_; ++c) {
      data_[r1][c] = data_[r1][c] != data_[r2][c];
    }
    ops_.emplace_back(r1, r2);
  }

  /// Full Gauss-Jordan elimination to reduced row-echelon form.
  void reduce() {
    std::size_t pivotRow = 0;
    for (std::size_t col = 0; col < cols_ && pivotRow < rows_; ++col) {
      std::size_t pivot = pivotRow;
      while (pivot < rows_ && !data_[pivot][col]) {
        ++pivot;
      }
      if (pivot == rows_) {
        continue;
      }
      if (pivot != pivotRow) {
        rowAdd(pivotRow, pivot);
        rowAdd(pivot, pivotRow);
        rowAdd(pivotRow, pivot);
      }
      for (std::size_t r = 0; r < rows_; ++r) {
        if (r != pivotRow && data_[r][col]) {
          rowAdd(r, pivotRow);
        }
      }
      ++pivotRow;
    }
  }

  [[nodiscard]] std::size_t rowWeight(const std::size_t r) const {
    std::size_t weight = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      if (data_[r][c]) {
        ++weight;
      }
    }
    return weight;
  }

  /// The recorded (r1 ^= r2) operations, in application order.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  ops() const noexcept {
    return ops_;
  }

private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<bool>> data_;
  std::vector<std::pair<std::size_t, std::size_t>> ops_;
};

class Extractor {
public:
  explicit Extractor(ZXDiagram diagram) : d_(std::move(diagram)) {}

  std::optional<QuantumCircuit> run() {
    const auto n = d_.outputs().size();
    if (n != d_.inputs().size()) {
      return std::nullopt;
    }
    for (Qubit q = 0; q < n; ++q) {
      outputIndex_[d_.outputs()[q]] = q;
    }
    for (Qubit q = 0; q < n; ++q) {
      inputIndex_[d_.inputs()[q]] = q;
    }
    if (!prepare()) {
      return std::nullopt;
    }
    // Rescue budget: each boundary pivot consumes at least one gadget hub,
    // so the number of useful rescues is bounded by the spider count.
    std::size_t rescues = d_.spiderCount() + 16;
    for (int guard = 0; guard < 100000; ++guard) {
      if (finished()) {
        return assemble();
      }
      if (!step()) {
        // Stuck on phase gadgets: a boundary pivot (the Simplifier's move)
        // pulls a gadget towards the frontier; retry afterwards.
        if (rescues == 0) {
          return std::nullopt;
        }
        --rescues;
        Simplifier simplifier(d_);
        if (simplifier.pivotBoundarySimp() == 0 &&
            simplifier.gadgetSimp() == 0) {
          return std::nullopt; // genuinely stuck
        }
        if (!prepare()) {
          return std::nullopt;
        }
      }
    }
    return std::nullopt;
  }

private:
  [[nodiscard]] Vertex outputNeighbor(const Qubit q) const {
    const auto& adj = d_.neighbors(d_.outputs()[q]);
    if (adj.size() != 1 || adj.front().edges.total() != 1) {
      throw CircuitError("extractCircuit: malformed output boundary");
    }
    return adj.front().vertex;
  }

  [[nodiscard]] bool edgeIsHadamard(const Vertex a, const Vertex b) const {
    return d_.edge(a, b).hadamard > 0;
  }

  void setOutputEdgeSimple(const Qubit q) {
    const Vertex out = d_.outputs()[q];
    const Vertex v = outputNeighbor(q);
    if (edgeIsHadamard(out, v)) {
      gates_.emplace_back(OpType::H, std::vector<Qubit>{},
                          std::vector<Qubit>{q});
      d_.removeEdge(out, v, EdgeType::Hadamard);
      d_.addEdge(out, v, EdgeType::Simple);
    }
  }

  /// Insert a phase-0 spider in the middle of the edge (a, b) such that the
  /// new spider connects to `a` with `typeToA` (the parity is balanced on
  /// the b side).
  Vertex insertSpider(const Vertex a, const Vertex b, const EdgeType typeToA) {
    const auto mult = d_.edge(a, b);
    const EdgeType original =
        mult.hadamard > 0 ? EdgeType::Hadamard : EdgeType::Simple;
    d_.removeEdge(a, b, original);
    const Vertex w = d_.addVertex(VertexType::Z);
    d_.addEdge(a, w, typeToA);
    // Parity: typeToA + typeToB must equal original (H counts mod 2).
    const bool needH = (original == EdgeType::Hadamard) !=
                       (typeToA == EdgeType::Hadamard);
    d_.addEdge(w, b, needH ? EdgeType::Hadamard : EdgeType::Simple);
    return w;
  }

  /// Make the diagram extraction-ready: every output connects to a distinct
  /// spider (or an input), and every frontier-input edge is a Hadamard edge.
  [[nodiscard]] bool prepare() {
    const auto n = d_.outputs().size();
    // Distinct frontier vertices.
    std::set<Vertex> seen;
    for (Qubit q = 0; q < n; ++q) {
      Vertex v = outputNeighbor(q);
      if (outputIndex_.contains(v)) {
        return false; // output-output wire: not a unitary diagram
      }
      if (!d_.isBoundary(v) && !seen.insert(v).second) {
        // Shared frontier spider: splice in a fresh one.
        insertSpider(d_.outputs()[q], v, EdgeType::Simple);
      } else if (inputIndex_.contains(v) && seen.contains(v)) {
        return false; // one input feeding two outputs
      }
    }
    return true;
  }

  [[nodiscard]] bool finished() const {
    const auto n = d_.outputs().size();
    for (Qubit q = 0; q < n; ++q) {
      const Vertex v = outputNeighbor(q);
      if (!d_.isBoundary(v)) {
        return false;
      }
    }
    return true;
  }

  /// One round: clear frontier phases and CZs, eliminate, move vertices in.
  [[nodiscard]] bool step() {
    const auto n = d_.outputs().size();
    // Frontier snapshot (skip completed wires).
    std::vector<Qubit> wires;
    std::vector<Vertex> frontier;
    for (Qubit q = 0; q < n; ++q) {
      const Vertex v = outputNeighbor(q);
      if (!d_.isBoundary(v)) {
        wires.push_back(q);
        frontier.push_back(v);
      }
    }

    // 1. Output edges simple, phases off the frontier, CZs between frontier.
    for (const auto q : wires) {
      setOutputEdgeSimple(q);
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const Vertex v = frontier[i];
      if (!d_.phase(v).isZero()) {
        gates_.emplace_back(OpType::P, std::vector<Qubit>{},
                            std::vector<Qubit>{wires[i]},
                            std::vector<double>{d_.phase(v).toRadians()});
        d_.setPhase(v, PiRational{});
      }
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (std::size_t j = i + 1; j < frontier.size(); ++j) {
        if (d_.connected(frontier[i], frontier[j])) {
          gates_.emplace_back(OpType::Z, std::vector<Qubit>{wires[i]},
                              std::vector<Qubit>{wires[j]});
          d_.removeAllEdges(frontier[i], frontier[j]);
        }
      }
    }
    // Hadamard-ify frontier-input edges so they join the GF(2) picture.
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const auto adj = d_.neighbors(frontier[i]); // copy
      for (const auto& [w, mult] : adj) {
        if (inputIndex_.contains(w) && mult.simple > 0) {
          insertSpider(w, frontier[i], EdgeType::Hadamard);
        }
      }
    }

    // 2. Biadjacency between frontier and its non-frontier neighbors.
    std::vector<Vertex> columns;
    std::map<Vertex, std::size_t> columnIndex;
    std::set<Vertex> frontierSet(frontier.begin(), frontier.end());
    for (const auto v : frontier) {
      for (const auto& [w, mult] : d_.neighbors(v)) {
        if (outputIndex_.contains(w) || frontierSet.contains(w)) {
          continue;
        }
        if (!columnIndex.contains(w)) {
          columnIndex[w] = columns.size();
          columns.push_back(w);
        }
      }
    }
    if (columns.empty()) {
      return false; // dead end
    }
    BitMatrix m(frontier.size(), columns.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (const auto& [w, mult] : d_.neighbors(frontier[i])) {
        if (const auto it = columnIndex.find(w); it != columnIndex.end()) {
          m.set(i, it->second, mult.hadamard > 0);
        }
      }
    }
    m.reduce();

    // 3. Emit the recorded row operations as CNOTs and mirror them on the
    // diagram: row i ^= row j means frontier[i]'s neighborhood becomes the
    // symmetric difference, realized by CNOT(control wires[j], target
    // wires[i]) on the output side.
    for (const auto& [r1, r2] : m.ops()) {
      gates_.emplace_back(OpType::X, std::vector<Qubit>{wires[r1]},
                          std::vector<Qubit>{wires[r2]});
    }
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      for (std::size_t c = 0; c < columns.size(); ++c) {
        const bool want = m.get(i, c);
        const bool have = edgeIsHadamard(frontier[i], columns[c]);
        if (want && !have) {
          d_.addEdge(frontier[i], columns[c], EdgeType::Hadamard);
        } else if (!want && have) {
          d_.removeEdge(frontier[i], columns[c], EdgeType::Hadamard);
        }
      }
    }

    // 4. Rows with a single 1: move that neighbor into the frontier.
    bool progress = false;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (m.rowWeight(i) != 1) {
        continue;
      }
      std::size_t c = 0;
      while (!m.get(i, c)) {
        ++c;
      }
      const Vertex u = columns[c];
      const Vertex v = frontier[i];
      const Qubit q = wires[i];
      const Vertex out = d_.outputs()[q];
      // v is phase-free, connected to out (simple) and to u (Hadamard) only.
      if (d_.degree(v) != 2) {
        continue; // leftover frontier CZ re-created by elimination; retry
      }
      gates_.emplace_back(OpType::H, std::vector<Qubit>{},
                          std::vector<Qubit>{q});
      d_.removeVertex(v);
      d_.addEdge(out, u, EdgeType::Simple);
      progress = true;
    }
    return progress;
  }

  /// Reverse the gate list and resolve the final input permutation.
  std::optional<QuantumCircuit> assemble() {
    const auto n = d_.outputs().size();
    std::vector<Qubit> inputOf(n);
    for (Qubit q = 0; q < n; ++q) {
      const Vertex v = outputNeighbor(q);
      const auto it = inputIndex_.find(v);
      if (it == inputIndex_.end()) {
        return std::nullopt;
      }
      if (edgeIsHadamard(d_.outputs()[q], v)) {
        gates_.emplace_back(OpType::H, std::vector<Qubit>{},
                            std::vector<Qubit>{q});
      }
      inputOf[q] = it->second;
    }
    QuantumCircuit circuit(n, "extracted");
    // Gates were collected from the outputs backwards.
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
      circuit.append(*it);
    }
    // Output q carries input inputOf[q]; the residual wire crossing sits at
    // the input side of the extracted gates: R(L)|x> = |y> with
    // y_w = x_{L(w)}, so L = inputOf realizes exactly that map.
    Permutation sigma{inputOf};
    if (!sigma.isValid()) {
      return std::nullopt;
    }
    circuit.initialLayout() = sigma;
    return circuit;
  }

  ZXDiagram d_;
  std::map<Vertex, Qubit> outputIndex_;
  std::map<Vertex, Qubit> inputIndex_;
  std::vector<Operation> gates_;
};

} // namespace

std::optional<QuantumCircuit> extractCircuit(ZXDiagram diagram) {
  return Extractor(std::move(diagram)).run();
}

} // namespace veriqc::zx
