/// \file dd_simulator.hpp
/// \brief Decision-diagram based circuit simulation and unitary construction.
#pragma once

#include "dd/package.hpp"
#include "ir/circuit.hpp"

#include <functional>

namespace veriqc::sim {

/// Optional callback polled between gate applications; returning true aborts
/// the computation (the partial result is still returned, referenced).
using StopToken = std::function<bool()>;

/// Build the DD of the full unitary realized by `circuit` on logical qubits
/// (initial layout, output permutation and global phase folded in) by
/// sequential left-multiplication of gate DDs. The result is referenced;
/// release it with `package.decRef` when done.
///
/// \pre package.numQubits() == circuit.numQubits()
[[nodiscard]] dd::mEdge buildUnitaryDD(dd::Package& package,
                                       const QuantumCircuit& circuit,
                                       const StopToken& stop = {});

/// Simulate `circuit` (logical semantics) on the given initial state.
/// The result is referenced; the initial state's reference is left untouched.
[[nodiscard]] dd::vEdge simulate(dd::Package& package,
                                 const QuantumCircuit& circuit,
                                 dd::vEdge initialState,
                                 const StopToken& stop = {});

} // namespace veriqc::sim
