#include "opt/optimizer.hpp"

#include "ir/gate_matrix.hpp"

#include <cmath>
#include <complex>
#include <optional>

namespace veriqc::opt {

namespace {

constexpr double kAngleTol = 1e-12;

bool isZeroAngle(const double theta) {
  return std::abs(std::remainder(theta, 4.0 * PI)) < kAngleTol;
}

/// Index of the next op after `i` acting on any qubit of ops[i], or npos.
/// Sets `blocked` if that op shares only part of the qubits or is a barrier.
std::size_t nextOnSameQubits(const std::vector<Operation>& ops,
                             const std::size_t i, bool& blocked) {
  blocked = false;
  const auto qubits = ops[i].usedQubits();
  for (std::size_t j = i + 1; j < ops.size(); ++j) {
    const auto& candidate = ops[j];
    if (candidate.type == OpType::Barrier) {
      blocked = true;
      return j;
    }
    bool touches = false;
    for (const auto q : qubits) {
      if (candidate.actsOn(q)) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      continue;
    }
    // Must act on exactly the same qubit set to be a cancellation partner.
    const auto otherQubits = candidate.usedQubits();
    if (otherQubits.size() != qubits.size()) {
      blocked = true;
      return j;
    }
    for (const auto q : otherQubits) {
      if (!ops[i].actsOn(q)) {
        blocked = true;
        return j;
      }
    }
    return j;
  }
  blocked = true;
  return ops.size();
}

void eraseTwo(std::vector<Operation>& ops, const std::size_t i,
              const std::size_t j) {
  ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
  ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
}

} // namespace

std::size_t removeIdentities(QuantumCircuit& circuit,
                             const bool dropBarriers) {
  auto& ops = circuit.ops();
  std::size_t removed = 0;
  for (std::size_t i = 0; i < ops.size();) {
    const auto& op = ops[i];
    const bool zeroRotation =
        (op.type == OpType::RX || op.type == OpType::RY ||
         op.type == OpType::RZ || op.type == OpType::P) &&
        isZeroAngle(op.params[0]);
    if (op.type == OpType::I || zeroRotation ||
        (dropBarriers && op.type == OpType::Barrier)) {
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

std::size_t cancelInversePairs(QuantumCircuit& circuit) {
  auto& ops = circuit.ops();
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].isNonUnitary()) {
        continue;
      }
      bool blocked = false;
      const auto j = nextOnSameQubits(ops, i, blocked);
      if (blocked || j >= ops.size()) {
        continue;
      }
      if (ops[j].isInverseOf(ops[i])) {
        eraseTwo(ops, i, j);
        removed += 2;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

std::size_t mergeRotations(QuantumCircuit& circuit) {
  auto& ops = circuit.ops();
  std::size_t merged = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& op = ops[i];
      if (op.type != OpType::RX && op.type != OpType::RY &&
          op.type != OpType::RZ && op.type != OpType::P) {
        continue;
      }
      bool blocked = false;
      const auto j = nextOnSameQubits(ops, i, blocked);
      if (blocked || j >= ops.size()) {
        continue;
      }
      const auto& other = ops[j];
      if (other.type != op.type || other.targets != op.targets) {
        continue;
      }
      auto c1 = op.controls;
      auto c2 = other.controls;
      std::sort(c1.begin(), c1.end());
      std::sort(c2.begin(), c2.end());
      if (c1 != c2) {
        continue;
      }
      const double total = op.params[0] + other.params[0];
      ops[i].params[0] = total;
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
      ++merged;
      if (isZeroAngle(total)) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      }
      changed = true;
      break;
    }
  }
  return merged;
}

namespace {

/// ZYZ decomposition of a 2x2 unitary into u3(theta, phi, lambda) plus a
/// global phase gamma: m = e^{i gamma} u3(theta, phi, lambda).
struct ZYZ {
  double theta;
  double phi;
  double lambda;
  double gamma;
};

ZYZ zyzDecompose(const GateMatrix& m) {
  const double c = std::abs(m[0]);
  const double s = std::abs(m[2]);
  ZYZ result{};
  result.theta = 2.0 * std::atan2(s, c);
  if (c > 1e-12 && s > 1e-12) {
    result.gamma = std::arg(m[0]);
    result.phi = std::arg(m[2]) - result.gamma;
    result.lambda = std::arg(-m[1]) - result.gamma;
  } else if (c > 1e-12) {
    // Diagonal: theta ~ 0; split the relative phase evenly.
    result.gamma = std::arg(m[0]);
    result.phi = 0.0;
    result.lambda = std::arg(m[3]) - result.gamma;
  } else {
    // Anti-diagonal: theta ~ pi.
    result.gamma = 0.0;
    result.phi = std::arg(m[2]);
    result.lambda = std::arg(-m[1]);
  }
  return result;
}

GateMatrix multiply2x2(const GateMatrix& a, const GateMatrix& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

bool isPlainSingleQubit(const Operation& op) {
  return !op.isNonUnitary() && op.controls.empty() &&
         isSingleTargetType(op.type);
}

} // namespace

std::size_t fuseSingleQubitGates(QuantumCircuit& circuit) {
  auto& ops = circuit.ops();
  std::size_t fused = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!isPlainSingleQubit(ops[i])) {
      continue;
    }
    const Qubit q = ops[i].targets[0];
    // Collect the maximal run of plain 1q gates on q with nothing else in
    // between on q.
    std::vector<std::size_t> run{i};
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (!ops[j].actsOn(q)) {
        if (ops[j].type == OpType::Barrier) {
          break;
        }
        continue;
      }
      if (isPlainSingleQubit(ops[j])) {
        run.push_back(j);
      } else {
        break;
      }
    }
    if (run.size() < 2) {
      continue;
    }
    GateMatrix total = gateMatrix(OpType::I, {});
    for (const auto idx : run) {
      total = multiply2x2(gateMatrix(ops[idx].type, ops[idx].params), total);
    }
    const auto zyz = zyzDecompose(total);
    circuit.addGlobalPhase(zyz.gamma);
    ops[i] = Operation(OpType::U3, {}, {q},
                       {zyz.theta, zyz.phi, zyz.lambda});
    for (std::size_t k = run.size(); k-- > 1;) {
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(run[k]));
    }
    fused += run.size() - 1;
  }
  return fused;
}

std::size_t reconstructSwaps(QuantumCircuit& circuit) {
  auto& ops = circuit.ops();
  std::size_t reconstructed = 0;
  bool changed = true;
  const auto isCx = [](const Operation& op) {
    return op.type == OpType::X && op.controls.size() == 1;
  };
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!isCx(ops[i])) {
        continue;
      }
      bool blocked1 = false;
      const auto j = nextOnSameQubits(ops, i, blocked1);
      if (blocked1 || j >= ops.size() || !isCx(ops[j])) {
        continue;
      }
      bool blocked2 = false;
      const auto k = nextOnSameQubits(ops, j, blocked2);
      if (blocked2 || k >= ops.size() || !isCx(ops[k])) {
        continue;
      }
      const Qubit a = ops[i].controls[0];
      const Qubit b = ops[i].targets[0];
      if (ops[j].controls[0] == b && ops[j].targets[0] == a &&
          ops[k].controls[0] == a && ops[k].targets[0] == b) {
        ops[i] = Operation(OpType::SWAP, {}, {a, b});
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(k));
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
        ++reconstructed;
        changed = true;
        break;
      }
    }
  }
  return reconstructed;
}

QuantumCircuit optimize(const QuantumCircuit& circuit) {
  QuantumCircuit result = circuit;
  result.setName(circuit.name() + "_opt");
  while (true) {
    std::size_t changes = 0;
    changes += removeIdentities(result);
    changes += cancelInversePairs(result);
    changes += mergeRotations(result);
    changes += fuseSingleQubitGates(result);
    if (changes == 0) {
      break;
    }
  }
  return result;
}

} // namespace veriqc::opt
