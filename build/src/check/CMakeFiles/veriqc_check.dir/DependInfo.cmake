
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/dd_checkers.cpp" "src/check/CMakeFiles/veriqc_check.dir/dd_checkers.cpp.o" "gcc" "src/check/CMakeFiles/veriqc_check.dir/dd_checkers.cpp.o.d"
  "/root/repo/src/check/manager.cpp" "src/check/CMakeFiles/veriqc_check.dir/manager.cpp.o" "gcc" "src/check/CMakeFiles/veriqc_check.dir/manager.cpp.o.d"
  "/root/repo/src/check/result.cpp" "src/check/CMakeFiles/veriqc_check.dir/result.cpp.o" "gcc" "src/check/CMakeFiles/veriqc_check.dir/result.cpp.o.d"
  "/root/repo/src/check/zx_checker.cpp" "src/check/CMakeFiles/veriqc_check.dir/zx_checker.cpp.o" "gcc" "src/check/CMakeFiles/veriqc_check.dir/zx_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/veriqc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/veriqc_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/veriqc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/zx/CMakeFiles/veriqc_zx.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/veriqc_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/veriqc_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
