# Empty compiler generated dependencies file for zx_micro.
# This may be replaced when dependencies are built.
