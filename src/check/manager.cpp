#include "check/manager.hpp"

#include "check/report.hpp"
#include "check/task_pool.hpp"
#include "check/watchdog.hpp"
#include "dd/package.hpp"
#include "fault/fault.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <new>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

namespace veriqc::check {

namespace {

using Clock = std::chrono::steady_clock;

/// Exception firewall around one engine: whatever an engine throws is
/// converted into a per-slot Result instead of unwinding into the manager
/// (where a raw std::thread would std::terminate the process). Resource
/// budgets (and allocation failure, their unplanned cousin) degrade to
/// ResourceExhausted; everything else becomes EngineError. The captured
/// diagnostic is preserved so Result::toString can surface it.
Result runGuarded(const std::function<Result()>& engine,
                  const std::string& name) {
  const auto start = Clock::now();
  const auto failed = [&](const EquivalenceCriterion criterion,
                          std::string message) {
    Result result;
    result.method = name;
    result.criterion = criterion;
    result.errorMessage = std::move(message);
    result.runtimeSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  };
  try {
    return engine();
  } catch (const ResourceLimitError& e) {
    return failed(EquivalenceCriterion::ResourceExhausted, e.what());
  } catch (const std::bad_alloc& e) {
    return failed(EquivalenceCriterion::ResourceExhausted, e.what());
  } catch (const std::exception& e) {
    return failed(EquivalenceCriterion::EngineError, e.what());
  } catch (...) {
    return failed(EquivalenceCriterion::EngineError, "unknown exception");
  }
}

/// True for slots whose outcome is an abnormal termination rather than an
/// analysis result — exactly the outcomes the degradation ladder retries.
bool isFailureSlot(const EquivalenceCriterion criterion) {
  return criterion == EquivalenceCriterion::ResourceExhausted ||
         criterion == EquivalenceCriterion::EngineError;
}

/// The engines the manager can schedule into a slot. A slot's kind can
/// change across retries (sim-fallback turns an Alternating slot into a
/// Simulation one).
enum class EngineKind : std::uint8_t { Alternating, Simulation, ZX, Dense };

std::string engineName(const EngineKind kind, const Configuration& config) {
  switch (kind) {
  case EngineKind::Alternating:
    return "dd-alternating(" + toString(config.oracle) + ")";
  case EngineKind::Simulation:
    return "dd-simulation(" + toString(config.stimuliKind) + ")";
  case EngineKind::ZX:
    return "zx-calculus";
  case EngineKind::Dense:
    return "dense";
  }
  return "unknown";
}

/// Walk one rung down the degradation ladder for a failed slot, mutating its
/// configuration (and possibly its kind) in place. Rungs, first-applicable:
///  - "single-thread": drop every intra-check parallelism knob to 1 — the
///    retry avoids worker-pool and region machinery entirely.
///  - "gc-tight" (DD engines): collect eagerly from a small threshold and
///    halve a finite node budget — trades throughput for a tight memory
///    band, the right response to bad_alloc/budget failures.
///  - "sim-fallback": replace the alternating scheme by random-stimuli
///    simulation, whose diagrams are vectors instead of matrices.
///  - "retry": nothing left to degrade; try again as-is (the failure may
///    have been transient, e.g. a bounded injected fault).
std::string degradeStep(EngineKind& kind, Configuration& config) {
  if (config.checkThreads != 1 || config.simulationThreads != 1 ||
      config.zxParallelRegions != 1) {
    config.checkThreads = 1;
    config.simulationThreads = 1;
    config.zxParallelRegions = 1;
    return "single-thread";
  }
  const bool ddEngine =
      kind == EngineKind::Alternating || kind == EngineKind::Simulation;
  if (ddEngine && !config.aggressiveGC) {
    config.aggressiveGC = true;
    if (config.maxDDNodes > 0) {
      config.maxDDNodes = std::max<std::size_t>(1024, config.maxDDNodes / 2);
    }
    return "gc-tight";
  }
  if (kind == EngineKind::Alternating) {
    kind = EngineKind::Simulation;
    return "sim-fallback";
  }
  return "retry";
}

/// Combine per-engine outcomes into one verdict: a definitive answer wins
/// (ties broken by runtime), then ProbablyEquivalent, then Timeout, then the
/// first engine that at least ran and terminated normally. Only when every
/// surviving slot failed does a failure outcome become the verdict —
/// ResourceExhausted (a budget did its job) before EngineError (a genuine
/// fault). The combined record also lists which engines ran out of budget,
/// so graceful degradation stays visible even when a sibling's verdict wins.
Result combine(const std::vector<Result>& results, const double elapsed) {
  const Result* best = nullptr;
  for (const auto& r : results) {
    if (isDefinitive(r.criterion) &&
        (best == nullptr || r.runtimeSeconds < best->runtimeSeconds)) {
      best = &r;
    }
  }
  const auto firstWith = [&results](const auto& pred) -> const Result* {
    for (const auto& r : results) {
      if (pred(r)) {
        return &r;
      }
    }
    return nullptr;
  };
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::ProbablyEquivalent;
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::Timeout;
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion != EquivalenceCriterion::NotRun &&
             r.criterion != EquivalenceCriterion::Cancelled &&
             !isFailureSlot(r.criterion);
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::ResourceExhausted;
    });
  }
  if (best == nullptr) {
    best = firstWith([](const Result& r) {
      return r.criterion == EquivalenceCriterion::EngineError;
    });
  }
  if (best == nullptr && !results.empty()) {
    best = &results.front();
  }
  Result combined = best != nullptr ? *best : Result{};
  for (const auto& r : results) {
    if (r.criterion == EquivalenceCriterion::ResourceExhausted) {
      combined.resourceLimitedEngines.push_back(r.method);
    }
  }
  combined.runtimeSeconds = elapsed;
  return combined;
}

} // namespace

EquivalenceCheckingManager::EquivalenceCheckingManager(QuantumCircuit c1,
                                                       QuantumCircuit c2,
                                                       Configuration config)
    : c1_(std::move(c1)), c2_(std::move(c2)), config_(std::move(config)) {}

Result EquivalenceCheckingManager::run() {
  engineResults_.clear();
  // Arm the configured fault plan for exactly this run. An empty plan leaves
  // whatever VERIQC_FAULT armed untouched (ScopedPlan would replace it).
  std::optional<fault::ScopedPlan> faultPlan;
  if (!config_.faultPlan.empty()) {
    faultPlan.emplace(config_.faultPlan);
  }
  auto& phases = activePhases();
  auto prepareSpan = phases.scope("prepare");
  const auto start = Clock::now();
  // Watermark at run start: the per-run peakResidentSetKB is the growth this
  // run caused, so under a multi-job daemon a small job no longer inherits
  // the largest job's process-wide high-water mark.
  const auto rssBaselineKB = dd::Package::peakResidentSetKB();
  const auto deadline = config_.timeout.count() > 0
                            ? start + config_.timeout
                            : Clock::time_point::max();
  std::atomic<bool> cancel{false};
  if (externalCancel_.load(std::memory_order_acquire)) {
    cancel.store(true, std::memory_order_release);
  }

  std::vector<EngineKind> kinds;
  if (config_.runAlternating) {
    kinds.push_back(EngineKind::Alternating);
  }
  if (config_.runSimulation && config_.simulationRuns > 0) {
    kinds.push_back(EngineKind::Simulation);
  }
  if (config_.runZX) {
    kinds.push_back(EngineKind::ZX);
  }
  if (config_.runDense) {
    kinds.push_back(EngineKind::Dense);
  }
  if (kinds.empty()) {
    prepareSpan.finish();
    Result none;
    none.method = "none";
    return none;
  }
  const std::size_t n = kinds.size();

  // Per-slot ladder state: the configuration (and kind) a slot currently
  // runs under, the rung applied before its current attempt, and the full
  // attempt lineage. Each slot's state is touched only by the task running
  // that slot (parallel rounds) or the manager thread (between rounds).
  std::vector<Configuration> slotConfig(n, config_);
  std::vector<EngineKind> slotKind = kinds;
  std::vector<std::string> slotRung(n);
  std::vector<std::vector<AttemptRecord>> lineage(n);

  // Pre-fill every slot as "never started" so that a run which stops early
  // leaves an honest record for the skipped engines.
  engineResults_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    engineResults_[i] = Result{};
    engineResults_[i].criterion = EquivalenceCriterion::NotRun;
    engineResults_[i].method = engineName(slotKind[i], slotConfig[i]);
  }

  // Soft watchdog: heartbeats flow through the per-slot stop tokens; a slot
  // silent past the budget trips the shared cancel flag, so the run ends in
  // bounded time (siblings wind down as Cancelled — the trip precedes the
  // deadline, so stop attribution never mislabels it Timeout).
  std::unique_ptr<SoftWatchdog> watchdog;
  if (config_.watchdogMillis > 0) {
    watchdog = std::make_unique<SoftWatchdog>(
        n, std::chrono::milliseconds(config_.watchdogMillis),
        [&cancel](std::size_t /*slot*/) {
          cancel.store(true, std::memory_order_release);
        });
  }
  // Acquire pairs with the release store of a winning engine (or the
  // watchdog), so an engine that observes the flag also observes everything
  // written before it was raised (the winner's result slot in particular).
  const auto stopFor = [this, &cancel, deadline,
                        wd = watchdog.get()](const std::size_t slot) {
    return StopToken([this, &cancel, deadline, wd, slot] {
      if (wd != nullptr) {
        wd->beat(slot);
      }
      return cancel.load(std::memory_order_acquire) ||
             externalCancel_.load(std::memory_order_acquire) ||
             Clock::now() >= deadline;
    });
  };

  // One attempt of one slot; runs on the manager thread (sequential path)
  // or a pool task (parallel path) — but never concurrently for one slot.
  const auto runAttempt = [&](const std::size_t i) {
    const std::string name = engineName(slotKind[i], slotConfig[i]);
    const std::size_t attempt = lineage[i].size();
    std::string spanName = "engine:" + name;
    if (attempt > 0) {
      spanName += "#retry" + std::to_string(attempt);
    }
    // PhaseTimer is internally synchronized, so concurrent engine spans may
    // be opened from worker threads directly.
    auto span = phases.scope(spanName);
    const auto stop = stopFor(i);
    // The dense baseline takes no stop token and thus emits no heartbeats;
    // leaving its slot inactive keeps the watchdog from tripping on it.
    const bool monitored = watchdog != nullptr && slotKind[i] != EngineKind::Dense;
    if (monitored) {
      watchdog->beginSlot(i);
    }
    auto result = runGuarded(
        [this, &stop, i, &slotKind, &slotConfig]() -> Result {
          const auto& cfg = slotConfig[i];
          switch (slotKind[i]) {
          case EngineKind::Alternating:
            return ddAlternatingCheck(c1_, c2_, cfg, stop);
          case EngineKind::Simulation:
            return ddSimulationCheck(c1_, c2_, cfg, stop);
          case EngineKind::ZX:
            return zxCheck(c1_, c2_, cfg, stop);
          case EngineKind::Dense:
            // Brute-force cross-check; throws CircuitError past
            // denseMaxQubits, which the firewall turns into an EngineError
            // slot rather than a crash.
            return denseCheck(c1_, c2_, cfg, cfg.denseMaxQubits);
          }
          throw std::logic_error("unknown engine kind");
        },
        name);
    if (monitored) {
      watchdog->endSlot(i);
    }
    // Close the span before publishing the result so its duration never
    // includes sibling bookkeeping — the sequential path finishes its span
    // at the same point.
    span.finish();
    AttemptRecord record;
    record.engine = name;
    record.attempt = attempt;
    record.degradation = slotRung[i];
    record.criterion = criterionKey(result.criterion);
    record.runtimeSeconds = result.runtimeSeconds;
    record.errorMessage = result.errorMessage;
    lineage[i].push_back(std::move(record));
    engineResults_[i] = std::move(result);
    // A definitive verdict terminates the other engines early;
    // release-publish so siblings that observe the flag also observe the
    // stored result.
    if (isDefinitive(engineResults_[i].criterion)) {
      cancel.store(true, std::memory_order_release);
    }
  };

  prepareSpan.finish();

  // Attempt rounds: round 0 runs every configured engine; each later round
  // retries the slots that failed, one ladder rung further degraded. Rounds
  // end when no slot failed, the retry budget is spent, or the question is
  // already settled (cancel/deadline).
  std::vector<std::size_t> pending(n);
  std::iota(pending.begin(), pending.end(), 0);
  std::size_t suppressedExceptions = 0;
  while (!pending.empty()) {
    // Lineage length at round start, per pending slot. Any pending slot
    // whose lineage did not grow this round never reached the engine
    // firewall (its pool task died at start or was skipped by a poisoned
    // group); it must still be charged an attempt or a persistent start-up
    // fault would drain ladder rungs without ever consuming retry budget.
    std::vector<std::size_t> attemptsBefore(n, 0);
    for (const auto i : pending) {
      attemptsBefore[i] = lineage[i].size();
    }
    if (config_.parallel && pending.size() > 1) {
      // One slot per pending engine: the calling thread runs one engine
      // itself inside wait() while the spawned workers run the rest. An
      // injected pool (useTaskPool) is shared across managers — the daemon
      // case — and its sizing is the owner's business; otherwise a private
      // per-round pool is sized to the pending slots.
      std::optional<TaskPool> ownedPool;
      if (externalPool_ == nullptr) {
        ownedPool.emplace(pending.size());
      }
      TaskPool& pool = externalPool_ != nullptr ? *externalPool_ : *ownedPool;
      // No group-level stop token here: every engine must *start* even when
      // a sibling finishes first, so its slot records Cancelled (an honest
      // "was started, then yielded") instead of being skipped outright.
      TaskGroup group(pool);
      for (const auto i : pending) {
        group.submit("engine:" + engineName(slotKind[i], slotConfig[i]),
                     [&runAttempt, i](std::size_t /*slot*/) { runAttempt(i); });
      }
      try {
        group.wait();
      } catch (const std::exception& e) {
        // A task failed before the engine firewall could engage (e.g. an
        // injected pool.task_start fault). The group is poisoned: siblings
        // that never started were skipped; their slots read NotRun (round
        // 0) or still hold the previous round's failure. Record the aborted
        // attempt on every such slot so it stays retryable by the ladder —
        // and so the round provably consumed retry budget.
        for (const auto i : pending) {
          if (lineage[i].size() != attemptsBefore[i]) {
            continue;  // runAttempt completed for this slot.
          }
          const std::string name = engineName(slotKind[i], slotConfig[i]);
          Result failure;
          failure.method = name;
          failure.criterion = EquivalenceCriterion::EngineError;
          failure.errorMessage =
              std::string("engine task failed to start: ") + e.what();
          AttemptRecord record;
          record.engine = name;
          record.attempt = lineage[i].size();
          record.degradation = slotRung[i];
          record.criterion = criterionKey(failure.criterion);
          record.errorMessage = failure.errorMessage;
          lineage[i].push_back(std::move(record));
          engineResults_[i] = std::move(failure);
        }
      }
      suppressedExceptions += group.suppressedExceptions();
    } else {
      for (const auto i : pending) {
        runAttempt(i);
        if (cancel.load(std::memory_order_acquire)) {
          // The question is settled — skip the remaining engines instead of
          // running them against a tripped stop token (their aborted
          // partial results would be meaningless and cost time).
          break;
        }
      }
    }
    std::vector<std::size_t> retry;
    const bool settled = cancel.load(std::memory_order_acquire) ||
                         externalCancel_.load(std::memory_order_acquire) ||
                         Clock::now() >= deadline;
    if (!settled) {
      for (const auto i : pending) {
        if (isFailureSlot(engineResults_[i].criterion) &&
            lineage[i].size() <= config_.engineRetryLimit) {
          slotRung[i] = degradeStep(slotKind[i], slotConfig[i]);
          retry.push_back(i);
        }
      }
    }
    pending = std::move(retry);
  }

  auto combineSpan = phases.scope("combine");
  // Attach lineage to the slots that were retried; slots settled on the
  // first attempt stay lineage-free, keeping their records (and the golden
  // reports built from them) byte-identical to pre-ladder runs.
  for (std::size_t i = 0; i < n; ++i) {
    if (lineage[i].size() > 1) {
      engineResults_[i].degradation = slotRung[i];
      engineResults_[i].attempts = lineage[i];
    }
  }
  auto combined =
      combine(engineResults_,
              std::chrono::duration<double>(Clock::now() - start).count());
  // The combined record carries the lineage of every retried slot, so the
  // whole ladder walk is visible even when an undegraded sibling won.
  combined.attempts.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (lineage[i].size() > 1) {
      combined.attempts.insert(combined.attempts.end(), lineage[i].begin(),
                               lineage[i].end());
    }
  }
  if (suppressedExceptions > 0) {
    combined.counters.add("task_pool/suppressed_exceptions",
                          static_cast<double>(suppressedExceptions));
  }
  if (watchdog != nullptr) {
    combined.counters.add("watchdog/trips",
                          static_cast<double>(watchdog->trips()));
  }
  // Nonzero fired/suppressed totals of armed injection points; silent (and
  // golden-stable) when no plan was armed.
  fault::Registry::instance().exportCounters(combined.counters);
  // Resident-set accounting on the combined result only: the absolute
  // process-wide high watermark under its explicit name, and the growth
  // this run caused (watermark delta; a run that never pushed the peak —
  // e.g. a small daemon job after a large one — honestly reports 0).
  const auto processPeakKB = dd::Package::peakResidentSetKB();
  combined.processPeakResidentSetKB = processPeakKB;
  combined.peakResidentSetKB =
      processPeakKB > rssBaselineKB ? processPeakKB - rssBaselineKB : 0;
  return combined;
}

Result checkEquivalence(const QuantumCircuit& c1, const QuantumCircuit& c2,
                        const Configuration& config) {
  EquivalenceCheckingManager manager(c1, c2, config);
  return manager.run();
}

} // namespace veriqc::check
