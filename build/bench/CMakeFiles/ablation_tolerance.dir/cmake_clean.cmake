file(REMOVE_RECURSE
  "CMakeFiles/ablation_tolerance.dir/ablation_tolerance.cpp.o"
  "CMakeFiles/ablation_tolerance.dir/ablation_tolerance.cpp.o.d"
  "ablation_tolerance"
  "ablation_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
