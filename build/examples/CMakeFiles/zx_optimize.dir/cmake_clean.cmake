file(REMOVE_RECURSE
  "CMakeFiles/zx_optimize.dir/zx_optimize.cpp.o"
  "CMakeFiles/zx_optimize.dir/zx_optimize.cpp.o.d"
  "zx_optimize"
  "zx_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zx_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
