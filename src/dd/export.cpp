#include "dd/export.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

namespace veriqc::dd {

namespace {

/// HSV-like hue from the complex phase, as "h,s,v" for graphviz.
std::string phaseColor(const std::complex<double>& w) {
  const double angle = std::arg(w); // (-pi, pi]
  const double hue = (angle + PI) / (2.0 * PI);
  std::ostringstream os;
  os.precision(3);
  os << hue << " 0.7 0.8";
  return os.str();
}

double magnitudeWidth(const std::complex<double>& w) {
  return 0.5 + 2.5 * std::min(1.0, std::abs(w));
}

template <typename Node>
void collect(const Node* node, std::map<const Node*, std::size_t>& ids) {
  if (node == nullptr || node->v == kTerminalLevel || ids.contains(node)) {
    return;
  }
  ids.emplace(node, ids.size());
  for (const auto& child : node->e) {
    if (!child.isZero()) {
      collect(child.p, ids);
    }
  }
}

template <typename Node>
std::string render(const Edge<Node>& root, const char* rootLabel) {
  std::ostringstream os;
  os << "digraph dd {\n  rankdir=TB;\n  node [shape=circle];\n";
  std::map<const Node*, std::size_t> ids;
  collect(root.p, ids);
  os << "  root [shape=point];\n";
  os << "  terminal [shape=box, label=\"1\"];\n";
  for (const auto& [node, id] : ids) {
    os << "  n" << id << " [label=\"q" << node->v << "\"];\n";
  }
  const auto target = [&ids](const Edge<Node>& edge) -> std::string {
    if (edge.p->v == kTerminalLevel) {
      return "terminal";
    }
    std::string name = "n";
    name += std::to_string(ids.at(edge.p));
    return name;
  };
  if (!root.isZero()) {
    os << "  root -> " << target(root) << " [penwidth="
       << magnitudeWidth(root.w) << ", color=\"" << phaseColor(root.w)
       << "\", label=\"" << rootLabel << "\"];\n";
  }
  for (const auto& [node, id] : ids) {
    for (std::size_t i = 0; i < node->e.size(); ++i) {
      const auto& child = node->e[i];
      if (child.isZero()) {
        continue;
      }
      os << "  n" << id << " -> " << target(child) << " [penwidth="
         << magnitudeWidth(child.w) << ", color=\"" << phaseColor(child.w)
         << "\", label=\"" << i << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

} // namespace

std::string toDot(const Package& package, const mEdge& edge) {
  (void)package;
  return render(edge, "M");
}

std::string toDot(const Package& package, const vEdge& edge) {
  (void)package;
  return render(edge, "v");
}

void writeDot(const Package& package, const mEdge& edge,
              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write DOT file: " + path);
  }
  out << toDot(package, edge);
}

} // namespace veriqc::dd
