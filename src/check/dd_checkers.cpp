#include "check/dd_checkers.hpp"

#include "audit/checkpoint.hpp"
#include "check/task_pool.hpp"
#include "dd/package.hpp"
#include "opt/optimizer.hpp"
#include "sim/dd_simulator.hpp"
#include "sim/dense.hpp"
#include "support/mutex.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

namespace veriqc::check {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(const Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Poll the stop token inside tight gate loops only every this many
/// iterations — cheap enough to keep deadlines honest on huge gate groups
/// without a per-gate std::function call.
constexpr std::size_t kStopPollStride = 16;

/// The engine's own view of the configured deadline, measured from its own
/// start. Tracking it locally lets an early stop be attributed correctly.
Clock::time_point localDeadline(const Configuration& config,
                                const Clock::time_point start) {
  return config.timeout.count() > 0 ? start + config.timeout
                                    : Clock::time_point::max();
}

/// Attribute an early stop (the discipline zxCheck established in PR 2):
/// past the local deadline it is a Timeout; before it, the only other source
/// of a tripped stop token is a sibling engine's definitive verdict —
/// Cancelled, which combine() never ranks above a normally-completed slot.
EquivalenceCriterion stopAttribution(const Clock::time_point deadline) {
  return Clock::now() >= deadline ? EquivalenceCriterion::Timeout
                                  : EquivalenceCriterion::Cancelled;
}

/// Copy a package's cache counters into the result record and feed the
/// named-counter registry the run report serializes.
void recordCacheStats(const dd::Package& package, Result& result) {
  const auto stats = package.stats();
  result.computeCacheStats += stats.computeTotal();
  result.gateCacheStats += stats.gateCache;
  package.exportCounters(result.counters);
}

/// Package sizing/budget knobs derived from the checker configuration: the
/// resource governor's DD-node and memory budgets apply to every package an
/// engine creates.
dd::PackageConfig packageConfigFor(const Configuration& config) {
  dd::PackageConfig packageConfig;
  packageConfig.maxNodes = config.maxDDNodes;
  packageConfig.maxMemoryMB = config.maxMemoryMB;
  if (config.aggressiveGC) {
    // Degraded mode (ladder rung "gc-tight"): collect from a small initial
    // threshold so the live-node band stays tight at the cost of throughput.
    packageConfig.gcInitialThreshold = 1024;
  }
  return packageConfig;
}

/// Best-effort warm-cache adoption: when the caller published a gate-DD
/// snapshot of matching shape (veriqcd's SharedGateCache), this package's
/// gate-cache misses import from it instead of rebuilding. A shape mismatch
/// silently leaves the package cold.
void adoptWarmSource(dd::Package& package, const Configuration& config) {
  if (config.warmGateSource != nullptr) {
    package.adoptWarmGateSource(config.warmGateSource);
  }
}

/// Independent seed for stimulus `run` (splitmix64 mix of seed and index):
/// makes the generated stimulus a function of (seed, run) alone, independent
/// of which worker draws it and in which order.
std::uint64_t stimulusSeed(const std::uint64_t seed, const std::uint64_t run) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (run + 1);
  z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31U);
}

/// Align the two circuits and optionally reconstruct SWAP gates so the
/// alternating checker can absorb them.
std::pair<QuantumCircuit, QuantumCircuit>
prepare(const QuantumCircuit& c1, const QuantumCircuit& c2,
        const Configuration& config) {
  auto [a, b] = alignCircuits(c1, c2);
  if (config.reconstructSwaps) {
    opt::reconstructSwaps(a);
    opt::reconstructSwaps(b);
  }
  return {std::move(a), std::move(b)};
}

/// Final verdict from the accumulated diagram E (which should resemble the
/// identity for equivalent circuits).
EquivalenceCriterion classify(dd::Package& package, const dd::mEdge& e,
                              const Configuration& config, Result& result) {
  const auto ident = package.makeIdent();
  if (e.n == ident.n) {
    result.hilbertSchmidtFidelity = 1.0;
    if (std::abs(e.w - std::complex<double>{1.0, 0.0}) <
        config.checkTolerance) {
      return EquivalenceCriterion::Equivalent;
    }
    if (std::abs(std::abs(e.w) - 1.0) < config.checkTolerance) {
      return EquivalenceCriterion::EquivalentUpToGlobalPhase;
    }
    return EquivalenceCriterion::NotEquivalent;
  }
  const double fidelity = package.traceFidelity(e);
  result.hilbertSchmidtFidelity = fidelity;
  if (std::abs(fidelity - 1.0) < config.checkTolerance) {
    return EquivalenceCriterion::EquivalentUpToGlobalPhase;
  }
  return EquivalenceCriterion::NotEquivalent;
}

/// Wraps the accumulator diagram with reference management and statistics.
class Accumulator {
public:
  explicit Accumulator(dd::Package& package, const bool recordTrace = false)
      : package_(package), recordTrace_(recordTrace) {
    edge_ = package_.makeIdent();
    package_.incRef(edge_);
  }

  void replace(const dd::mEdge& next) {
    package_.incRef(next);
    package_.decRef(edge_);
    edge_ = next;
    package_.garbageCollect();
    peak_ = std::max(peak_, package_.stats().matrixNodes);
    if (recordTrace_) {
      trace_.push_back(package_.nodeCount(edge_));
    }
  }

  void applyLeft(const dd::mEdge& gate) {
    replace(package_.multiply(gate, edge_));
  }
  void applyRight(const dd::mEdge& gate) {
    replace(package_.multiply(edge_, gate));
  }

  [[nodiscard]] const dd::mEdge& edge() const noexcept { return edge_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
  [[nodiscard]] std::vector<std::size_t> takeTrace() {
    return std::move(trace_);
  }

private:
  dd::Package& package_;
  bool recordTrace_;
  dd::mEdge edge_{};
  std::size_t peak_ = 0;
  std::vector<std::size_t> trace_;
};

/// One side of the alternating scheme: a gate queue plus the tracked
/// wire-to-logical permutation.
class TaskSide {
public:
  TaskSide(const QuantumCircuit& circuit, const bool invert)
      : perm_(circuit.initialLayout()), invert_(invert) {
    for (const auto& op : circuit.ops()) {
      if (!op.isNonUnitary()) {
        ops_.push_back(&op);
      }
    }
  }

  [[nodiscard]] bool done() const noexcept { return next_ >= ops_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return ops_.size() - next_;
  }
  [[nodiscard]] std::size_t total() const noexcept { return ops_.size(); }

  /// Absorb any pending SWAP gates into the permutation tracker. Returns
  /// true if a non-SWAP gate is pending afterwards.
  bool absorbSwaps() {
    while (!done() && ops_[next_]->isBareSwap()) {
      perm_.swapImages(ops_[next_]->targets[0], ops_[next_]->targets[1]);
      ++next_;
    }
    return !done();
  }

  /// DD of the next gate (inverted for the right-hand side), consuming it.
  dd::mEdge takeGateDD(dd::Package& package) {
    const Operation* op = ops_[next_++];
    if (invert_) {
      return package.makeOperationDD(op->inverse(), perm_);
    }
    return package.makeOperationDD(*op, perm_);
  }

  /// DD of the next gate without consuming it (for the lookahead oracle).
  dd::mEdge peekGateDD(dd::Package& package) {
    const Operation* op = ops_[next_];
    if (invert_) {
      return package.makeOperationDD(op->inverse(), perm_);
    }
    return package.makeOperationDD(*op, perm_);
  }

  void consume() { ++next_; }

  [[nodiscard]] const Permutation& trackedPermutation() const noexcept {
    return perm_;
  }

private:
  std::vector<const Operation*> ops_;
  std::size_t next_ = 0;
  Permutation perm_;
  bool invert_;
};

/// Finish `result` for an engine that tripped a resource budget: graceful
/// degradation keeps the cache/peak statistics gathered so far and captures
/// the diagnostic, so a manager (or caller) can report what ran out and
/// retry with a larger budget.
Result resourceExhausted(Result result, const dd::Package& package,
                         const ResourceLimitError& e,
                         const Clock::time_point start) {
  result.criterion = EquivalenceCriterion::ResourceExhausted;
  result.errorMessage = e.what();
  recordCacheStats(package, result);
  result.peakNodes =
      std::max(result.peakNodes, package.stats().peakMatrixNodes);
  result.runtimeSeconds = secondsSince(start);
  return result;
}

// --- sharded alternating scheme ---------------------------------------------

/// One precomputed gate of a sharded side: a circuit operation under the
/// permutation snapshot it will see, or (op == nullptr) a bare transposition
/// from the final permutation-equalization step.
struct ShardGate {
  const Operation* op = nullptr;
  Permutation perm;
  bool invert = false;
  Qubit x = 0;
  Qubit y = 0;

  [[nodiscard]] dd::mEdge buildDD(dd::Package& package) const {
    if (op == nullptr) {
      return package.makeSwapDD(x, y);
    }
    if (invert) {
      return package.makeOperationDD(op->inverse(), perm);
    }
    return package.makeOperationDD(*op, perm);
  }
};

struct FlattenedSide {
  std::vector<ShardGate> gates;
  Permutation finalPerm;
};

/// Flatten one side of the alternating scheme for sharding. The tracked
/// permutation evolves only by SWAP absorption — a DD-independent walk — so
/// every gate's permutation snapshot (and the side's final permutation) can
/// be computed up front, before any DD work is distributed.
FlattenedSide flattenSide(const QuantumCircuit& circuit, const bool invert) {
  FlattenedSide side{.gates = {}, .finalPerm = circuit.initialLayout()};
  for (const auto& op : circuit.ops()) {
    if (op.isNonUnitary()) {
      continue;
    }
    if (op.isBareSwap()) {
      side.finalPerm.swapImages(op.targets[0], op.targets[1]);
      continue;
    }
    ShardGate gate;
    gate.op = &op;
    gate.perm = side.finalPerm;
    gate.invert = invert;
    side.gates.push_back(std::move(gate));
  }
  return side;
}

/// A chunk partial product built in a worker-private package. The package is
/// kept alive until the combining thread has imported the edge.
struct ChunkProduct {
  std::unique_ptr<dd::Package> package;
  dd::mEdge edge{};
  bool built = false;
};

/// The sharded alternating check (checkThreads > 1). Left and right gate
/// sequences are split into `slots` contiguous chunks; each chunk's partial
/// product is built in a worker-private DD package (one package per task —
/// packages are single-threaded by contract), then the main thread imports
/// the products and interleave-combines them:
///
///   E  =  Lc_C ... Lc_1 · I · Rc_1 ... Rc_C,   combined as E <- Lc_i E Rc_i
///
/// Left and right multiplications commute as operators, so this equals the
/// sequential scheme's product exactly, while the chunk-interleaved combine
/// order preserves the near-identity cancellation the scheme relies on at
/// chunk granularity. The permutation-equalizing transpositions are
/// DD-independent and precomputed, so they shard along with the right side.
Result shardedAlternatingCheck(const QuantumCircuit& a,
                               const QuantumCircuit& b,
                               const Configuration& config,
                               const StopToken& stop, Result result,
                               const Clock::time_point start,
                               const Clock::time_point deadline,
                               const std::size_t slots) {
  auto right = flattenSide(a, /*invert=*/true);
  auto left = flattenSide(b, /*invert=*/false);
  // tau = L o O^-1 o O' o L'^-1, as in the sequential scheme; its
  // transpositions belong at the very end of the right-hand sequence.
  const auto tau = right.finalPerm.compose(a.outputPermutation().inverse())
                       .compose(b.outputPermutation())
                       .compose(left.finalPerm.inverse());
  for (const auto& [x, y] : tau.transpositions()) {
    ShardGate swap;
    swap.x = x;
    swap.y = y;
    right.gates.push_back(std::move(swap));
  }

  dd::Package package(a.numQubits(), config.numericalTolerance,
                      packageConfigFor(config));
  adoptWarmSource(package, config);
  Accumulator acc(package, config.recordTrace);
  audit::DDCheckpoint checkpoint(config.auditLevel,
                                 "dd-alternating combine checkpoint");
  const auto auditGate = [&]() {
    if (checkpoint.enabled()) {
      const std::array roots{acc.edge()};
      checkpoint.postGate(package, roots);
    }
  };
  const auto stoppedResult = [&]() -> Result {
    result.criterion = stopAttribution(deadline);
    recordCacheStats(package, result);
    result.runtimeSeconds = secondsSince(start);
    result.peakNodes = std::max(result.peakNodes, acc.peak());
    result.sizeTrace = acc.takeTrace();
    return result;
  };

  const std::size_t chunkCount = slots;
  std::vector<ChunkProduct> leftChunks(chunkCount);
  std::vector<ChunkProduct> rightChunks(chunkCount);
  std::atomic<bool> sawStop{false};
  support::Mutex resultMutex; // guards `result`'s stats fields during merge

  TaskPool pool(slots);
  {
    TaskGroup group(pool, stop);
    const auto submitChunk = [&](const std::vector<ShardGate>& gates,
                                 std::vector<ChunkProduct>& chunks,
                                 const std::size_t index,
                                 const bool leftSide) {
      const std::size_t total = gates.size();
      const std::size_t beginIdx = index * total / chunkCount;
      const std::size_t endIdx = (index + 1) * total / chunkCount;
      if (beginIdx == endIdx) {
        return; // empty chunk: its partial product is the identity
      }
      group.submit(
          (leftSide ? "shard:left:" : "shard:right:") + std::to_string(index),
          [&, beginIdx, endIdx, index, leftSide](std::size_t /*slot*/) {
            // One private package per task: dd::Package is single-threaded
            // by contract, and a private instance also gives the audit
            // checkpoint a purely thread-local structure to walk.
            auto pkg = std::make_unique<dd::Package>(
                a.numQubits(), config.numericalTolerance,
                packageConfigFor(config));
            adoptWarmSource(*pkg, config);
            audit::DDCheckpoint shardCheckpoint(
                config.auditLevel, "dd-alternating shard checkpoint");
            auto e = pkg->makeIdent();
            pkg->incRef(e);
            bool aborted = false;
            for (std::size_t g = beginIdx; g < endIdx; ++g) {
              if ((g - beginIdx) % kStopPollStride == 0 && stop && stop()) {
                aborted = true;
                break;
              }
              const auto& gates_ = leftSide ? left.gates : right.gates;
              const auto gateDD = gates_[g].buildDD(*pkg);
              const auto next = leftSide ? pkg->multiply(gateDD, e)
                                         : pkg->multiply(e, gateDD);
              pkg->incRef(next);
              pkg->decRef(e);
              e = next;
              pkg->garbageCollect();
              if (shardCheckpoint.enabled()) {
                const std::array roots{e};
                shardCheckpoint.postGate(*pkg, roots);
              }
            }
            if (!aborted && shardCheckpoint.enabled()) {
              const std::array roots{e};
              shardCheckpoint.boundary(*pkg, roots);
            }
            {
              const support::LockGuard lock(resultMutex);
              recordCacheStats(*pkg, result);
              result.peakNodes = std::max(result.peakNodes,
                                          pkg->stats().peakMatrixNodes);
            }
            if (aborted) {
              sawStop.store(true, std::memory_order_relaxed);
              return;
            }
            auto& chunk = chunks[index];
            chunk.edge = e;
            chunk.package = std::move(pkg);
            chunk.built = true;
          });
    };
    for (std::size_t i = 0; i < chunkCount; ++i) {
      submitChunk(left.gates, leftChunks, i, /*leftSide=*/true);
      submitChunk(right.gates, rightChunks, i, /*leftSide=*/false);
    }
    // Exceptions beyond the first lose the wait() rethrow race; surface the
    // loss as a counter instead of dropping it silently.
    const auto recordSuppressed = [&group, &result] {
      if (const auto suppressed = group.suppressedExceptions();
          suppressed > 0) {
        result.counters.add("task_pool/suppressed_exceptions",
                            static_cast<double>(suppressed));
      }
    };
    try {
      group.wait();
    } catch (const ResourceLimitError& e) {
      // A worker package outgrew its budget; the group is already cancelled
      // and drained. Degrade exactly like the sequential scheme.
      recordSuppressed();
      return resourceExhausted(std::move(result), package, e, start);
    }
    recordSuppressed();
    // Other worker exceptions propagate to the manager's firewall, as the
    // sequential scheme's would.
  }

  try {
    if (sawStop.load(std::memory_order_relaxed) || (stop && stop())) {
      return stoppedResult();
    }
    // All chunks completed: import and interleave-combine on this thread.
    for (std::size_t i = 0; i < chunkCount; ++i) {
      if (stop && stop()) {
        return stoppedResult();
      }
      if (leftChunks[i].built) {
        acc.applyLeft(
            package.importMatrix(*leftChunks[i].package, leftChunks[i].edge));
        leftChunks[i].package.reset(); // bound worker-package memory
        auditGate();
      }
      if (rightChunks[i].built) {
        acc.applyRight(package.importMatrix(*rightChunks[i].package,
                                            rightChunks[i].edge));
        rightChunks[i].package.reset();
        auditGate();
      }
    }
    const double relativePhase = b.globalPhase() - a.globalPhase();
    if (relativePhase != 0.0) {
      const auto& e = acc.edge();
      acc.replace(
          {e.n, e.w * std::exp(std::complex<double>{0.0, relativePhase})});
    }
    if (checkpoint.enabled()) {
      const std::array roots{acc.edge()};
      checkpoint.boundary(package, roots);
    }
    result.criterion = classify(package, acc.edge(), config, result);
  } catch (const ResourceLimitError& e) {
    result.peakNodes = std::max(result.peakNodes, acc.peak());
    result.sizeTrace = acc.takeTrace();
    return resourceExhausted(std::move(result), package, e, start);
  }
  recordCacheStats(package, result);
  result.peakNodes = std::max(result.peakNodes, acc.peak());
  result.sizeTrace = acc.takeTrace();
  result.runtimeSeconds = secondsSince(start);
  return result;
}

} // namespace

Result denseCheck(const QuantumCircuit& c1, const QuantumCircuit& c2,
                  const Configuration& config, const std::size_t maxQubits) {
  const auto start = Clock::now();
  Result result;
  result.method = "dense";
  const auto [a, b] = alignCircuits(c1, c2);
  if (a.numQubits() > maxQubits) {
    throw CircuitError("denseCheck: circuit too large for dense comparison");
  }
  const auto ua = sim::circuitUnitary(a);
  const auto ub = sim::circuitUnitary(b);
  const auto overlap = ua.adjoint().multiply(ub).trace();
  const auto dim = static_cast<double>(std::size_t{1} << a.numQubits());
  result.hilbertSchmidtFidelity = std::abs(overlap) / dim;
  if (ua.equals(ub, config.checkTolerance)) {
    result.criterion = EquivalenceCriterion::Equivalent;
  } else if (std::abs(std::abs(overlap) - dim) < config.checkTolerance * dim) {
    result.criterion = EquivalenceCriterion::EquivalentUpToGlobalPhase;
  } else {
    result.criterion = EquivalenceCriterion::NotEquivalent;
  }
  result.runtimeSeconds = secondsSince(start);
  return result;
}

Result ddConstructionCheck(const QuantumCircuit& c1, const QuantumCircuit& c2,
                           const Configuration& config, const StopToken& stop) {
  const auto start = Clock::now();
  const auto deadline = localDeadline(config, start);
  Result result;
  result.method = "dd-construction";
  const auto [a, b] = prepare(c1, c2, config);
  dd::Package package(a.numQubits(), config.numericalTolerance,
                      packageConfigFor(config));
  adoptWarmSource(package, config);
  audit::DDCheckpoint checkpoint(config.auditLevel,
                                 "dd-construction checkpoint");

  // `pinned` carries edges the engine keeps referenced outside the
  // accumulator (the finished first diagram while the second one builds), so
  // the audit's refcount recount sees every external root.
  const auto build = [&](const QuantumCircuit& circuit, bool& aborted,
                         const dd::mEdge* pinned) -> dd::mEdge {
    const auto explicitCircuit = circuit.withExplicitPermutations();
    Accumulator acc(package);
    for (const auto& op : explicitCircuit.ops()) {
      if (op.isNonUnitary()) {
        continue;
      }
      if (stop && stop()) {
        aborted = true;
        break;
      }
      acc.applyLeft(package.makeOperationDD(op));
      if (checkpoint.enabled()) {
        std::vector<dd::mEdge> roots{acc.edge()};
        if (pinned != nullptr) {
          roots.push_back(*pinned);
        }
        checkpoint.postGate(package, roots);
      }
    }
    result.peakNodes = std::max(result.peakNodes, acc.peak());
    if (explicitCircuit.globalPhase() != 0.0 && !aborted) {
      const auto& e = acc.edge();
      acc.replace({e.n, e.w * std::exp(std::complex<double>{
                             0.0, explicitCircuit.globalPhase()})});
    }
    return acc.edge();
  };

  try {
    bool aborted = false;
    const auto e1 = build(a, aborted, nullptr);
    const auto e2 = aborted ? package.makeIdent() : build(b, aborted, &e1);
    if (!aborted && checkpoint.enabled()) {
      const std::array roots{e1, e2};
      checkpoint.boundary(package, roots);
    }
    if (aborted) {
      result.criterion = stopAttribution(deadline);
      recordCacheStats(package, result);
      result.runtimeSeconds = secondsSince(start);
      return result;
    }
    // Canonicity: equal functionality implies equal root nodes.
    if (e1.n == e2.n) {
      result.hilbertSchmidtFidelity = 1.0;
      if (std::abs(e1.w - e2.w) < config.checkTolerance) {
        result.criterion = EquivalenceCriterion::Equivalent;
      } else if (std::abs(std::abs(e1.w) - std::abs(e2.w)) <
                 config.checkTolerance) {
        result.criterion = EquivalenceCriterion::EquivalentUpToGlobalPhase;
      } else {
        result.criterion = EquivalenceCriterion::NotEquivalent;
      }
    } else {
      const auto product =
          package.multiply(package.conjugateTranspose(e1), e2);
      const double fidelity = package.traceFidelity(product);
      result.hilbertSchmidtFidelity = fidelity;
      result.criterion = std::abs(fidelity - 1.0) < config.checkTolerance
                             ? EquivalenceCriterion::EquivalentUpToGlobalPhase
                             : EquivalenceCriterion::NotEquivalent;
    }
  } catch (const ResourceLimitError& e) {
    return resourceExhausted(std::move(result), package, e, start);
  }
  recordCacheStats(package, result);
  result.runtimeSeconds = secondsSince(start);
  return result;
}

Result ddAlternatingCheck(const QuantumCircuit& c1, const QuantumCircuit& c2,
                          const Configuration& config, const StopToken& stop) {
  const auto start = Clock::now();
  const auto deadline = localDeadline(config, start);
  Result result;
  result.method = "dd-alternating(" + toString(config.oracle) + ")";
  const auto [a, b] = prepare(c1, c2, config);
  if (const auto slots = TaskPool::resolveSlots(config.checkThreads);
      slots > 1) {
    // The sharded scheme computes the same product (left and right
    // multiplications commute), so the oracle choice only matters for the
    // sequential path's interleaving.
    return shardedAlternatingCheck(a, b, config, stop, std::move(result),
                                   start, deadline, slots);
  }
  dd::Package package(a.numQubits(), config.numericalTolerance,
                      packageConfigFor(config));
  adoptWarmSource(package, config);

  TaskSide right(a, /*invert=*/true); // G^dagger, multiplied from the right
  TaskSide left(b, /*invert=*/false); // G', multiplied from the left
  Accumulator acc(package, config.recordTrace);
  audit::DDCheckpoint checkpoint(config.auditLevel,
                                 "dd-alternating checkpoint");
  // The accumulator edge is the engine's only external root at quiescent
  // points, so every checkpoint hands exactly it to the refcount recount.
  const auto auditGate = [&]() {
    if (checkpoint.enabled()) {
      const std::array roots{acc.edge()};
      checkpoint.postGate(package, roots);
    }
  };

  const auto stopped = [&]() { return stop && stop(); };

  try {
    // Gate-application loop driven by the configured oracle.
    while (true) {
      const bool leftPending = left.absorbSwaps();
      const bool rightPending = right.absorbSwaps();
      if (!leftPending && !rightPending) {
        break;
      }
      if (stopped()) {
        result.criterion = stopAttribution(deadline);
        recordCacheStats(package, result);
        result.runtimeSeconds = secondsSince(start);
        result.peakNodes = acc.peak();
        // Keep the truncated size trajectory: a partial Fig. 4 curve is
        // exactly what one wants to see from an aborted run.
        result.sizeTrace = acc.takeTrace();
        return result;
      }
      if (!leftPending) {
        acc.applyRight(right.takeGateDD(package));
        auditGate();
        continue;
      }
      if (!rightPending) {
        acc.applyLeft(left.takeGateDD(package));
        auditGate();
        continue;
      }
      switch (config.oracle) {
      case OracleStrategy::Naive:
        // Finish the left side first, then unwind the right side.
        acc.applyLeft(left.takeGateDD(package));
        break;
      case OracleStrategy::Proportional: {
        // Choose the side that lags behind its proportional schedule.
        const double progressLeft =
            static_cast<double>(left.total() - left.remaining()) /
            static_cast<double>(left.total());
        const double progressRight =
            static_cast<double>(right.total() - right.remaining()) /
            static_cast<double>(right.total());
        if (progressLeft <= progressRight) {
          acc.applyLeft(left.takeGateDD(package));
        } else {
          acc.applyRight(right.takeGateDD(package));
        }
        break;
      }
      case OracleStrategy::Lookahead: {
        const auto gateLeft = left.peekGateDD(package);
        const auto gateRight = right.peekGateDD(package);
        const auto candidateLeft = package.multiply(gateLeft, acc.edge());
        const auto candidateRight = package.multiply(acc.edge(), gateRight);
        const bool takeLeft = package.nodeCount(candidateLeft) <=
                              package.nodeCount(candidateRight);
        if (takeLeft) {
          left.consume();
        } else {
          right.consume();
        }
        // Reference the winner before reclaiming the loser so subdiagrams
        // shared between the two candidates survive the release.
        acc.replace(takeLeft ? candidateLeft : candidateRight);
        package.release(takeLeft ? candidateRight : candidateLeft);
        break;
      }
      }
      auditGate();
    }

    // Global phases: E accumulates G'.G^dagger, so the relative phase is
    // phase(b) - phase(a).
    const double relativePhase = b.globalPhase() - a.globalPhase();
    if (relativePhase != 0.0) {
      const auto& e = acc.edge();
      acc.replace(
          {e.n, e.w * std::exp(std::complex<double>{0.0, relativePhase})});
    }

    // Equalize the tracked permutations against the output permutations:
    // E should equal R(tau) with tau = L o O^-1 o O' o L'^-1.
    const auto tau = right.trackedPermutation()
                         .compose(a.outputPermutation().inverse())
                         .compose(b.outputPermutation())
                         .compose(left.trackedPermutation().inverse());
    for (const auto& [x, y] : tau.transpositions()) {
      acc.applyRight(package.makeSwapDD(x, y));
      auditGate();
    }
    if (checkpoint.enabled()) {
      const std::array roots{acc.edge()};
      checkpoint.boundary(package, roots);
    }

    result.criterion = classify(package, acc.edge(), config, result);
  } catch (const ResourceLimitError& e) {
    // The diagram outgrew its budget mid-check: degrade to a cooperative
    // abort so a sibling engine's verdict can still decide the question.
    result.peakNodes = acc.peak();
    result.sizeTrace = acc.takeTrace();
    return resourceExhausted(std::move(result), package, e, start);
  }
  recordCacheStats(package, result);
  result.peakNodes = acc.peak();
  result.sizeTrace = acc.takeTrace();
  result.runtimeSeconds = secondsSince(start);
  return result;
}

Result ddCompilationFlowCheck(const QuantumCircuit& original,
                              const QuantumCircuit& compiled,
                              const std::vector<std::size_t>& expansionCounts,
                              const Configuration& config,
                              const StopToken& stop) {
  const auto start = Clock::now();
  const auto deadline = localDeadline(config, start);
  Result result;
  result.method = "dd-alternating(compilation-flow)";
  if (expansionCounts.size() != original.size()) {
    throw CircuitError(
        "ddCompilationFlowCheck: one expansion count per original gate "
        "required");
  }
  std::size_t totalCompiled = 0;
  for (const auto c : expansionCounts) {
    totalCompiled += c;
  }
  if (totalCompiled != compiled.size()) {
    throw CircuitError(
        "ddCompilationFlowCheck: expansion counts do not cover the compiled "
        "circuit");
  }
  Configuration flowConfig = config;
  flowConfig.reconstructSwaps = false; // counts refer to the raw gate lists
  const auto [a, b] = alignCircuits(original, compiled);
  if (const auto slots = TaskPool::resolveSlots(flowConfig.checkThreads);
      slots > 1) {
    // Expansion counts only drive the sequential path's interleaving (and
    // were validated above); the final product is interleaving-independent,
    // so the sharded scheme applies unchanged.
    return shardedAlternatingCheck(a, b, flowConfig, stop, std::move(result),
                                   start, deadline, slots);
  }
  dd::Package package(a.numQubits(), flowConfig.numericalTolerance,
                      packageConfigFor(flowConfig));
  adoptWarmSource(package, flowConfig);
  TaskSide right(a, /*invert=*/true);
  TaskSide left(b, /*invert=*/false);
  Accumulator acc(package, flowConfig.recordTrace);
  audit::DDCheckpoint checkpoint(config.auditLevel,
                                 "dd-compilation-flow checkpoint");
  const auto auditGate = [&]() {
    if (checkpoint.enabled()) {
      const std::array roots{acc.edge()};
      checkpoint.postGate(package, roots);
    }
  };

  // Fill the result record for an early abort, attributing the stop to the
  // local deadline (Timeout) or a sibling's verdict (Cancelled) and keeping
  // the truncated size trace.
  const auto stoppedResult = [&]() -> Result {
    result.criterion = stopAttribution(deadline);
    recordCacheStats(package, result);
    result.runtimeSeconds = secondsSince(start);
    result.peakNodes = acc.peak();
    result.sizeTrace = acc.takeTrace();
    return result;
  };

  try {
    for (const auto count : expansionCounts) {
      if (stop && stop()) {
        return stoppedResult();
      }
      for (std::size_t i = 0; i < count; ++i) {
        // A single original gate can expand into arbitrarily many compiled
        // gates (SWAP chains from routing), so the deadline must also be
        // polled inside the group — throttled, to keep the common small
        // groups free of per-gate token calls.
        if (i % kStopPollStride == kStopPollStride - 1 && stop && stop()) {
          return stoppedResult();
        }
        if (left.absorbSwaps()) {
          acc.applyLeft(left.takeGateDD(package));
          auditGate();
        }
      }
      if (right.absorbSwaps()) {
        acc.applyRight(right.takeGateDD(package));
        auditGate();
      }
    }
    for (std::size_t i = 0; left.absorbSwaps(); ++i) {
      if (i % kStopPollStride == kStopPollStride - 1 && stop && stop()) {
        return stoppedResult();
      }
      acc.applyLeft(left.takeGateDD(package));
      auditGate();
    }
    for (std::size_t i = 0; right.absorbSwaps(); ++i) {
      if (i % kStopPollStride == kStopPollStride - 1 && stop && stop()) {
        return stoppedResult();
      }
      acc.applyRight(right.takeGateDD(package));
      auditGate();
    }

    const auto tau = right.trackedPermutation()
                         .compose(a.outputPermutation().inverse())
                         .compose(b.outputPermutation())
                         .compose(left.trackedPermutation().inverse());
    for (const auto& [x, y] : tau.transpositions()) {
      acc.applyRight(package.makeSwapDD(x, y));
      auditGate();
    }
    const double relativePhase = b.globalPhase() - a.globalPhase();
    if (relativePhase != 0.0) {
      const auto& e = acc.edge();
      acc.replace(
          {e.n, e.w * std::exp(std::complex<double>{0.0, relativePhase})});
    }
    if (checkpoint.enabled()) {
      const std::array roots{acc.edge()};
      checkpoint.boundary(package, roots);
    }
    result.criterion = classify(package, acc.edge(), flowConfig, result);
  } catch (const ResourceLimitError& e) {
    result.peakNodes = acc.peak();
    result.sizeTrace = acc.takeTrace();
    return resourceExhausted(std::move(result), package, e, start);
  }
  recordCacheStats(package, result);
  result.peakNodes = acc.peak();
  result.sizeTrace = acc.takeTrace();
  result.runtimeSeconds = secondsSince(start);
  return result;
}

Result ddSimulationCheck(const QuantumCircuit& c1, const QuantumCircuit& c2,
                         const Configuration& config, const StopToken& stop) {
  const auto start = Clock::now();
  const auto deadline = localDeadline(config, start);
  Result result;
  result.method = "dd-simulation(" + toString(config.stimuliKind) + ")";
  const auto [a, b] = alignCircuits(c1, c2);

  const std::size_t runs = config.simulationRuns;
  std::size_t workers = TaskPool::resolveSlots(config.simulationThreads);
  workers = std::min(workers, std::max<std::size_t>(1, runs));

  constexpr std::size_t kNoFail = std::numeric_limits<std::size_t>::max();
  std::atomic<std::size_t> nextRun{0};
  // Smallest failing stimulus index found so far. Runs are claimed in index
  // order and a run only aborts once a *smaller* index has failed, so every
  // index below the final value is fully simulated: the first counterexample
  // is deterministic regardless of thread count and scheduling.
  std::atomic<std::size_t> failIndex{kNoFail};
  std::atomic<bool> sawStop{false};
  // Workers must not let exceptions escape (raw std::thread would
  // std::terminate). A tripped resource budget is remembered as a flag so the
  // surviving workers' verdicts still count; any other exception is captured
  // once and rethrown on the caller's thread after the join.
  std::atomic<bool> sawResourceLimit{false};
  // Indices actually claimed from the shared counter. Tracked separately
  // from `performed` so the exact-accounting invariant — a cancelled worker
  // must not burn an index it never simulates — is observable from outside.
  std::atomic<std::size_t> claimed{0};
  std::atomic<std::size_t> performed{0};
  support::Mutex resultMutex; // guards the non-atomic result fields below
  std::size_t peakNodes = 0;
  std::string resourceLimitMessage;
  std::exception_ptr workerError;

  const auto workerFn = [&]() {
    try {
      // The DD package is documented single-threaded: one per worker.
      dd::Package package(a.numQubits(), config.numericalTolerance,
                          packageConfigFor(config));
      adoptWarmSource(package, config);
      // Per-worker checkpoint: packages are thread-local, so the audit walks
      // only structures owned by this thread.
      audit::DDCheckpoint checkpoint(config.auditLevel,
                                     "dd-simulation checkpoint");
      while (true) {
        // Poll the stop token *before* claiming an index: a cancelled worker
        // that claims first burns the index — it is counted out of `runs`
        // but never simulated, so the performed-run accounting drifts.
        if (stop && stop()) {
          sawStop.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t run =
            nextRun.fetch_add(1, std::memory_order_relaxed);
        if (run >= runs ||
            run > failIndex.load(std::memory_order_relaxed)) {
          break;
        }
        claimed.fetch_add(1, std::memory_order_relaxed);
        // Abort mid-simulation on external stop or once an earlier stimulus
        // already proved non-equivalence.
        const auto localStop = [&stop, &failIndex, run]() {
          return (stop && stop()) ||
                 failIndex.load(std::memory_order_relaxed) < run;
        };
        std::mt19937_64 rng(stimulusSeed(config.seed, run));
        const auto stimulus =
            sim::generateStimulus(config.stimuliKind, a.numQubits(), rng);
        const auto input =
            sim::simulate(package, stimulus, package.makeZeroState(), localStop);
        const auto out1 = sim::simulate(package, a, input, localStop);
        const auto out2 = sim::simulate(package, b, input, localStop);
        const bool abortedExternal = stop && stop();
        const bool abortedLocal =
            failIndex.load(std::memory_order_relaxed) < run;
        if (!abortedExternal && !abortedLocal && checkpoint.enabled()) {
          // The three state vectors are the only externally referenced
          // edges at this point (matrix gate DDs live in the gate cache,
          // which the audit treats as an internal root).
          const std::array vectorRoots{input, out1, out2};
          checkpoint.postGate(package, {}, vectorRoots);
        }
        const double fidelity = (abortedExternal || abortedLocal)
                                    ? 1.0
                                    : package.fidelity(out1, out2);
        package.decRef(input);
        package.decRef(out1);
        package.decRef(out2);
        package.garbageCollect();
        if (abortedExternal) {
          sawStop.store(true, std::memory_order_relaxed);
          break;
        }
        if (abortedLocal) {
          continue; // moot: a smaller counterexample exists
        }
        performed.fetch_add(1, std::memory_order_relaxed);
        const auto stats = package.stats();
        {
          const support::LockGuard lock(resultMutex);
          peakNodes =
              std::max(peakNodes, stats.matrixNodes + stats.vectorNodes);
        }
        if (std::abs(fidelity - 1.0) > config.checkTolerance) {
          std::size_t expected = failIndex.load(std::memory_order_relaxed);
          while (run < expected &&
                 !failIndex.compare_exchange_weak(expected, run,
                                                  std::memory_order_relaxed)) {
          }
        }
      }
      // Quiescent point: every state vector has been decRef'ed, so the
      // recount expects no external roots at all.
      checkpoint.boundary(package);
      const support::LockGuard lock(resultMutex);
      recordCacheStats(package, result);
    } catch (const ResourceLimitError& e) {
      sawResourceLimit.store(true, std::memory_order_relaxed);
      const support::LockGuard lock(resultMutex);
      if (resourceLimitMessage.empty()) {
        resourceLimitMessage = e.what();
      }
    } catch (...) {
      const support::LockGuard lock(resultMutex);
      if (!workerError) {
        workerError = std::current_exception();
      }
    }
  };

  if (workers <= 1) {
    workerFn();
  } else {
    // N pool slots give N-way parallelism from N-1 spawned threads: the
    // calling thread runs one worker task itself inside wait(). Worker
    // exceptions are contained by workerFn (flag + exception_ptr), so the
    // group's own rethrow path stays unused here.
    TaskPool pool(workers);
    TaskGroup group(pool);
    for (std::size_t i = 0; i < workers; ++i) {
      group.submit("simulate:worker" + std::to_string(i),
                   [&workerFn](std::size_t /*slot*/) { workerFn(); });
    }
    group.wait();
  }
  if (workerError) {
    std::rethrow_exception(workerError);
  }

  result.performedSimulations = performed.load();
  result.counters.add("sim.stimuli.claimed",
                      static_cast<double>(claimed.load()));
  result.counters.add("sim.stimuli.performed",
                      static_cast<double>(performed.load()));
  result.peakNodes = peakNodes;
  const auto firstFail = failIndex.load();
  if (firstFail != kNoFail) {
    // A counterexample is definitive even when another worker ran out of
    // budget or the deadline passed: the circuits differ.
    result.criterion = EquivalenceCriterion::NotEquivalent;
    result.counterexampleStimulus = static_cast<std::int64_t>(firstFail);
  } else if (sawResourceLimit.load() && performed.load() < runs) {
    result.criterion = EquivalenceCriterion::ResourceExhausted;
    result.errorMessage = resourceLimitMessage;
  } else if (sawStop.load()) {
    result.criterion = stopAttribution(deadline);
  } else {
    result.criterion = EquivalenceCriterion::ProbablyEquivalent;
  }
  result.runtimeSeconds = secondsSince(start);
  return result;
}

} // namespace veriqc::check
