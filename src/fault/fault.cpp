#include "fault/fault.hpp"

#include "ir/types.hpp"

#include <cstdlib>
#include <new>

namespace veriqc::fault {

namespace {

/// splitmix64 of (seed, n): the per-hit probability draw is a pure function
/// of the plan seed and the armed-hit index, so probabilistic plans replay
/// identically across runs and thread schedules that preserve hit order.
std::uint64_t mix(const std::uint64_t seed, const std::uint64_t n) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (n + 1);
  z = (z ^ (z >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27U)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31U);
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

std::uint64_t parseUint(const std::string_view value,
                        const std::string_view clause) {
  std::uint64_t out = 0;
  if (value.empty()) {
    throw std::invalid_argument("fault plan: empty number in clause \"" +
                                std::string(clause) + "\"");
  }
  for (const char c : value) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("fault plan: bad number \"" +
                                  std::string(value) + "\" in clause \"" +
                                  std::string(clause) + "\"");
    }
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return out;
}

} // namespace

void Point::onHit() {
  const auto n = armedHits_.fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  if (const auto ppm = probabilityPpm_.load(std::memory_order_relaxed);
      ppm >= 0) {
    fire = mix(seed_.load(std::memory_order_relaxed), n) % 1000000ULL <
           static_cast<std::uint64_t>(ppm);
  } else {
    fire = n >= after_.load(std::memory_order_relaxed);
  }
  if (!fire) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Claim one of the bounded firing slots: concurrent hits race for the
  // budget through a CAS so `times=1` fires exactly once even when several
  // worker threads hit the point simultaneously.
  if (const auto budget = times_.load(std::memory_order_relaxed);
      budget != 0) {
    auto current = fired_.load(std::memory_order_relaxed);
    while (true) {
      if (current >= budget) {
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (fired_.compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
        break;
      }
    }
  } else {
    fired_.fetch_add(1, std::memory_order_relaxed);
  }
  throwFault();
}

void Point::throwFault() {
  switch (static_cast<FaultKind>(kind_.load(std::memory_order_relaxed))) {
  case FaultKind::BadAlloc:
    throw std::bad_alloc{};
  case FaultKind::ResourceLimit:
    throw ResourceLimitError("fault:" + name_, 0,
                             armedHits_.load(std::memory_order_relaxed));
  case FaultKind::Runtime:
    break;
  }
  throw FaultInjectedError("injected fault at " + name_);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Registry() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once, before any threads.
  if (const char* env = std::getenv("VERIQC_FAULT");
      env != nullptr && *env != '\0') {
    armPlan(env);
  }
}

Point& Registry::point(const std::string_view name, const FaultKind kind) {
  const support::LockGuard lock(mutex_);
  if (const auto it = points_.find(name); it != points_.end()) {
    return *it->second;
  }
  auto owned =
      std::unique_ptr<Point>(new Point(std::string(name), kind));
  Point& created = *owned;
  points_.emplace(created.name(), std::move(owned));
  // Late registration: a plan armed before this site was ever reached still
  // applies to it.
  for (const auto& clause : pending_) {
    if (clause.point == created.name()) {
      armLocked(created, clause);
    }
  }
  return created;
}

std::vector<Registry::Clause> Registry::parsePlan(const std::string& plan) {
  std::vector<Clause> clauses;
  std::size_t begin = 0;
  while (begin <= plan.size()) {
    const auto end = plan.find_first_of(";,", begin);
    const auto clauseText =
        trim(std::string_view(plan).substr(begin, end == std::string::npos
                                                      ? std::string::npos
                                                      : end - begin));
    begin = end == std::string::npos ? plan.size() + 1 : end + 1;
    if (clauseText.empty()) {
      continue;
    }
    Clause clause;
    std::size_t tokenBegin = 0;
    bool first = true;
    while (tokenBegin <= clauseText.size()) {
      const auto tokenEnd = clauseText.find(':', tokenBegin);
      const auto token =
          trim(clauseText.substr(tokenBegin, tokenEnd == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : tokenEnd - tokenBegin));
      tokenBegin = tokenEnd == std::string_view::npos ? clauseText.size() + 1
                                                      : tokenEnd + 1;
      if (first) {
        if (token.empty() || token.find('=') != std::string_view::npos) {
          throw std::invalid_argument(
              "fault plan: clause must start with a point name: \"" +
              std::string(clauseText) + "\"");
        }
        clause.point = std::string(token);
        first = false;
        continue;
      }
      const auto eq = token.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("fault plan: expected key=value, got \"" +
                                    std::string(token) + "\" in clause \"" +
                                    std::string(clauseText) + "\"");
      }
      const auto key = token.substr(0, eq);
      const auto value = token.substr(eq + 1);
      if (key == "after") {
        clause.after = parseUint(value, clauseText);
      } else if (key == "times") {
        clause.times = parseUint(value, clauseText);
      } else if (key == "seed") {
        clause.seed = parseUint(value, clauseText);
      } else if (key == "p") {
        // Accept decimals in [0, 1]; stored in parts-per-million so the
        // armed state stays plain atomics.
        double probability = 0.0;
        try {
          std::size_t consumed = 0;
          probability = std::stod(std::string(value), &consumed);
          if (consumed != value.size()) {
            throw std::invalid_argument("trailing characters");
          }
        } catch (const std::exception&) {
          throw std::invalid_argument("fault plan: bad probability \"" +
                                      std::string(value) + "\" in clause \"" +
                                      std::string(clauseText) + "\"");
        }
        if (probability < 0.0 || probability > 1.0) {
          throw std::invalid_argument(
              "fault plan: probability out of [0,1] in clause \"" +
              std::string(clauseText) + "\"");
        }
        clause.probabilityPpm = static_cast<std::int64_t>(probability * 1e6);
      } else if (key == "throw") {
        clause.kindOverride = true;
        if (value == "bad_alloc") {
          clause.kind = FaultKind::BadAlloc;
        } else if (value == "resource_limit" || value == "resource") {
          clause.kind = FaultKind::ResourceLimit;
        } else if (value == "runtime") {
          clause.kind = FaultKind::Runtime;
        } else {
          throw std::invalid_argument("fault plan: unknown throw kind \"" +
                                      std::string(value) + "\" in clause \"" +
                                      std::string(clauseText) + "\"");
        }
      } else {
        throw std::invalid_argument("fault plan: unknown key \"" +
                                    std::string(key) + "\" in clause \"" +
                                    std::string(clauseText) + "\"");
      }
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

void Registry::armLocked(Point& point, const Clause& clause) {
  // Close the firing window first so no hit decides on a half-updated
  // configuration, then publish the new knobs with the release store.
  point.armed_.store(false, std::memory_order_release);
  if (clause.kindOverride) {
    point.kind_.store(static_cast<std::uint8_t>(clause.kind),
                      std::memory_order_relaxed);
  }
  point.after_.store(clause.after, std::memory_order_relaxed);
  point.times_.store(clause.times, std::memory_order_relaxed);
  point.probabilityPpm_.store(clause.probabilityPpm,
                              std::memory_order_relaxed);
  point.seed_.store(clause.seed, std::memory_order_relaxed);
  point.armedHits_.store(0, std::memory_order_relaxed);
  point.fired_.store(0, std::memory_order_relaxed);
  point.suppressed_.store(0, std::memory_order_relaxed);
  point.armed_.store(true, std::memory_order_release);
}

void Registry::armPlan(const std::string& plan) {
  auto clauses = parsePlan(plan); // throws before any state changes
  const support::LockGuard lock(mutex_);
  for (const auto& [name, point] : points_) {
    point->armed_.store(false, std::memory_order_release);
  }
  for (const auto& clause : clauses) {
    if (const auto it = points_.find(clause.point); it != points_.end()) {
      armLocked(*it->second, clause);
    }
  }
  pending_ = std::move(clauses);
}

void Registry::disarmAll() {
  const support::LockGuard lock(mutex_);
  for (const auto& [name, point] : points_) {
    point->armed_.store(false, std::memory_order_release);
  }
  pending_.clear();
}

bool Registry::anyArmed() const {
  const support::LockGuard lock(mutex_);
  if (!pending_.empty()) {
    return true;
  }
  for (const auto& [name, point] : points_) {
    if (point->armed()) {
      return true;
    }
  }
  return false;
}

void Registry::exportCounters(obs::CounterRegistry& counters) const {
  const support::LockGuard lock(mutex_);
  for (const auto& [name, point] : points_) {
    const auto fired = point->fired();
    const auto suppressed = point->suppressed();
    if (fired == 0 && suppressed == 0) {
      continue;
    }
    counters.add("fault/" + name + ".fired", static_cast<double>(fired));
    counters.add("fault/" + name + ".suppressed",
                 static_cast<double>(suppressed));
  }
}

std::uint64_t Registry::firedCount(const std::string_view name) const {
  const support::LockGuard lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second->fired();
}

std::uint64_t Registry::suppressedCount(const std::string_view name) const {
  const support::LockGuard lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second->suppressed();
}

} // namespace veriqc::fault
