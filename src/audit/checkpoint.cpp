#include "audit/checkpoint.hpp"

#include <utility>

namespace veriqc::audit {

DDCheckpoint::DDCheckpoint(const int configuredLevel, std::string context)
    : level_(effectiveAuditLevel(configuredLevel)),
      context_(std::move(context)) {}

void DDCheckpoint::postGate(const dd::Package& package,
                            const std::span<const dd::mEdge> matrixRoots,
                            const std::span<const dd::vEdge> vectorRoots) {
  if (level_ == kAuditOff) {
    return;
  }
  if (level_ == kAuditThrottled && ++sinceAudit_ < kCheckpointStride) {
    return;
  }
  sinceAudit_ = 0;
  run(package, matrixRoots, vectorRoots);
}

void DDCheckpoint::boundary(const dd::Package& package,
                            const std::span<const dd::mEdge> matrixRoots,
                            const std::span<const dd::vEdge> vectorRoots) {
  if (level_ == kAuditOff) {
    return;
  }
  sinceAudit_ = 0;
  run(package, matrixRoots, vectorRoots);
}

void DDCheckpoint::run(const dd::Package& package,
                       const std::span<const dd::mEdge> matrixRoots,
                       const std::span<const dd::vEdge> vectorRoots) {
  requireClean(auditPackage(package, matrixRoots, vectorRoots), context_);
}

void zxCheckpoint(const int configuredLevel, const zx::ZXDiagram& diagram,
                  const zx::Simplifier& simplifier,
                  const std::string& context) {
  if (effectiveAuditLevel(configuredLevel) == kAuditOff) {
    return;
  }
  AuditReport report = auditDiagram(diagram);
  report.merge(auditWorklist(simplifier));
  requireClean(report, context);
}

} // namespace veriqc::audit
