/// \file real_table.hpp
/// \brief Tolerance-aware interning of real numbers.
///
/// Decision diagrams only stay compact if edge weights that are "the same
/// number up to floating-point error" are represented by the *same* canonical
/// value — otherwise near-identical nodes fail to unify and the diagram blows
/// up (the effect discussed in Sec. 3 and Sec. 6.2 of the paper). This table
/// interns doubles: the first value seen within `tolerance` of a lookup
/// becomes the canonical representative for that neighbourhood.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace veriqc::dd {

class RealTable {
public:
  /// Default tolerance mirrors the reference DD package
  /// (1024 * machine epsilon ~ 2.3e-13).
  static constexpr double kDefaultTolerance = 1024.0 * 2.220446049250313e-16;

  explicit RealTable(double tolerance = kDefaultTolerance)
      : tolerance_(tolerance) {}

  [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
  void setTolerance(double tol) noexcept { tolerance_ = tol; }

  /// Canonical representative of `value`.
  [[nodiscard]] double lookup(double value);

  /// Canonical representative of a complex value (both parts interned).
  [[nodiscard]] std::complex<double> lookup(std::complex<double> value) {
    return {lookup(value.real()), lookup(value.imag())};
  }

  /// True if value is canonically zero under the tolerance.
  [[nodiscard]] bool isZero(double value) const noexcept {
    return std::abs(value) < tolerance_;
  }
  [[nodiscard]] bool isZero(std::complex<double> value) const noexcept {
    return isZero(value.real()) && isZero(value.imag());
  }
  [[nodiscard]] bool isOne(std::complex<double> value) const noexcept {
    return isZero(value.real() - 1.0) && isZero(value.imag());
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void clear() {
    buckets_.clear();
    count_ = 0;
  }

private:
  [[nodiscard]] std::int64_t keyOf(double value) const noexcept {
    return static_cast<std::int64_t>(std::floor(value / tolerance_));
  }

  double tolerance_;
  std::unordered_map<std::int64_t, std::vector<double>> buckets_;
  std::size_t count_ = 0;
};

} // namespace veriqc::dd
