#include "compile/architecture.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace veriqc::compile {

namespace {
constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();
}

Architecture::Architecture(std::string name, const std::size_t nqubits,
                           std::vector<std::pair<Qubit, Qubit>> edges)
    : name_(std::move(name)), nqubits_(nqubits), edges_(std::move(edges)),
      adjacency_(nqubits) {
  for (const auto& [a, b] : edges_) {
    if (a >= nqubits_ || b >= nqubits_ || a == b) {
      throw std::invalid_argument("Architecture: invalid edge");
    }
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }
  for (auto& nbrs : adjacency_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  computeDistances();
}

bool Architecture::adjacent(const Qubit a, const Qubit b) const {
  const auto& nbrs = adjacency_.at(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

void Architecture::computeDistances() {
  distances_.assign(nqubits_, std::vector<std::size_t>(nqubits_, kUnreachable));
  for (Qubit start = 0; start < nqubits_; ++start) {
    auto& dist = distances_[start];
    dist[start] = 0;
    std::deque<Qubit> queue{start};
    while (!queue.empty()) {
      const Qubit cur = queue.front();
      queue.pop_front();
      for (const Qubit next : adjacency_[cur]) {
        if (dist[next] == kUnreachable) {
          dist[next] = dist[cur] + 1;
          queue.push_back(next);
        }
      }
    }
  }
}

std::vector<Qubit> Architecture::shortestPath(const Qubit a,
                                              const Qubit b) const {
  if (distance(a, b) == kUnreachable) {
    throw std::invalid_argument("Architecture: qubits not connected");
  }
  std::vector<Qubit> path{a};
  Qubit cur = a;
  while (cur != b) {
    for (const Qubit next : adjacency_[cur]) {
      if (distance(next, b) + 1 == distance(cur, b)) {
        path.push_back(next);
        cur = next;
        break;
      }
    }
  }
  return path;
}

bool Architecture::isConnected() const {
  for (Qubit q = 0; q < nqubits_; ++q) {
    if (distances_[0][q] == kUnreachable) {
      return false;
    }
  }
  return true;
}

Architecture Architecture::linear(const std::size_t nqubits) {
  std::vector<std::pair<Qubit, Qubit>> edges;
  for (Qubit q = 0; q + 1 < nqubits; ++q) {
    edges.emplace_back(q, q + 1);
  }
  return {"linear_" + std::to_string(nqubits), nqubits, std::move(edges)};
}

Architecture Architecture::ring(const std::size_t nqubits) {
  auto arch = linear(nqubits);
  auto edges = arch.edges();
  if (nqubits > 2) {
    edges.emplace_back(static_cast<Qubit>(nqubits - 1), 0);
  }
  return {"ring_" + std::to_string(nqubits), nqubits, std::move(edges)};
}

Architecture Architecture::grid(const std::size_t rows,
                                const std::size_t cols) {
  std::vector<std::pair<Qubit, Qubit>> edges;
  const auto at = [cols](const std::size_t r, const std::size_t c) {
    return static_cast<Qubit>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(at(r, c), at(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(at(r, c), at(r + 1, c));
      }
    }
  }
  return {"grid_" + std::to_string(rows) + "x" + std::to_string(cols),
          rows * cols, std::move(edges)};
}

Architecture Architecture::ibmManhattanLike() {
  // 65-qubit heavy-hex lattice: five horizontal rows connected by bridge
  // qubits, following the layout family of IBM's Hummingbird devices.
  std::vector<std::pair<Qubit, Qubit>> edges;
  const auto chain = [&edges](const Qubit from, const Qubit to) {
    for (Qubit q = from; q < to; ++q) {
      edges.emplace_back(q, q + 1);
    }
  };
  chain(0, 9);    // row 0: 0..9
  chain(13, 23);  // row 1: 13..23
  chain(27, 37);  // row 2: 27..37
  chain(41, 51);  // row 3: 41..51
  chain(55, 64);  // row 4: 55..64
  // Bridges between row 0 and row 1.
  edges.emplace_back(0, 10);
  edges.emplace_back(10, 13);
  edges.emplace_back(4, 11);
  edges.emplace_back(11, 17);
  edges.emplace_back(8, 12);
  edges.emplace_back(12, 21);
  // Bridges between row 1 and row 2.
  edges.emplace_back(15, 24);
  edges.emplace_back(24, 29);
  edges.emplace_back(19, 25);
  edges.emplace_back(25, 33);
  edges.emplace_back(23, 26);
  edges.emplace_back(26, 37);
  // Bridges between row 2 and row 3.
  edges.emplace_back(27, 38);
  edges.emplace_back(38, 41);
  edges.emplace_back(31, 39);
  edges.emplace_back(39, 45);
  edges.emplace_back(35, 40);
  edges.emplace_back(40, 49);
  // Bridges between row 3 and row 4.
  edges.emplace_back(43, 52);
  edges.emplace_back(52, 56);
  edges.emplace_back(47, 53);
  edges.emplace_back(53, 60);
  edges.emplace_back(51, 54);
  edges.emplace_back(54, 64);
  return {"ibm_manhattan_like_65", 65, std::move(edges)};
}

Architecture Architecture::fullyConnected(const std::size_t nqubits) {
  std::vector<std::pair<Qubit, Qubit>> edges;
  for (Qubit a = 0; a < nqubits; ++a) {
    for (Qubit b = a + 1; b < nqubits; ++b) {
      edges.emplace_back(a, b);
    }
  }
  return {"full_" + std::to_string(nqubits), nqubits, std::move(edges)};
}

} // namespace veriqc::compile
