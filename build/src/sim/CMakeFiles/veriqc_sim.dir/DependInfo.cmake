
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dd_simulator.cpp" "src/sim/CMakeFiles/veriqc_sim.dir/dd_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/veriqc_sim.dir/dd_simulator.cpp.o.d"
  "/root/repo/src/sim/dense.cpp" "src/sim/CMakeFiles/veriqc_sim.dir/dense.cpp.o" "gcc" "src/sim/CMakeFiles/veriqc_sim.dir/dense.cpp.o.d"
  "/root/repo/src/sim/stimuli.cpp" "src/sim/CMakeFiles/veriqc_sim.dir/stimuli.cpp.o" "gcc" "src/sim/CMakeFiles/veriqc_sim.dir/stimuli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/veriqc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/veriqc_dd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
