/// \file compute_table.hpp
/// \brief Operation caches (memoization) for decision-diagram operations.
///
/// Both tables are direct-mapped (collisions overwrite) and
/// *generation-stamped*: every entry carries the generation in which it was
/// written, and invalidating the whole table is a single generation bump
/// instead of an O(table size) sweep. Garbage collection — which must drop
/// all cached results because they may reference collected nodes — therefore
/// costs O(1) per table. Entries are also allocated lazily on first insert,
/// so packages that never exercise an operation pay nothing for its cache.
#pragma once

#include "dd/node.hpp"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace veriqc::dd {

/// Hit/miss/collision counters of one operation cache.
struct CacheStats {
  std::size_t lookups = 0;       ///< total lookup calls
  std::size_t hits = 0;          ///< lookups returning a cached result
  std::size_t collisions = 0;    ///< live entry present but key mismatched
  std::size_t inserts = 0;       ///< total insert calls
  std::size_t invalidations = 0; ///< generation bumps (clear() calls)

  [[nodiscard]] double hitRate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  CacheStats& operator+=(const CacheStats& other) noexcept {
    lookups += other.lookups;
    hits += other.hits;
    collisions += other.collisions;
    inserts += other.inserts;
    invalidations += other.invalidations;
    return *this;
  }
};

/// Direct-mapped, generation-stamped cache for binary DD operations.
template <typename LeftEdge, typename RightEdge, typename ResultEdge>
class ComputeTable {
public:
  static constexpr std::size_t kDefaultEntries = 1U << 16U;

  explicit ComputeTable(const std::size_t numEntries = kDefaultEntries)
      : mask_(std::bit_ceil(numEntries < 2 ? std::size_t{2} : numEntries) -
              1) {}

  void insert(const LeftEdge& lhs, const RightEdge& rhs,
              const ResultEdge& result) {
    if (entries_.empty()) {
      entries_.resize(mask_ + 1);
    }
    auto& entry = entries_[hash(lhs, rhs)];
    entry.lhs = lhs;
    entry.rhs = rhs;
    entry.result = result;
    entry.gen = generation_;
    ++stats_.inserts;
  }

  /// Returns nullptr on miss.
  [[nodiscard]] const ResultEdge* lookup(const LeftEdge& lhs,
                                         const RightEdge& rhs) {
    ++stats_.lookups;
    if (entries_.empty()) {
      return nullptr;
    }
    const auto& entry = entries_[hash(lhs, rhs)];
    if (entry.gen != generation_) {
      return nullptr;
    }
    if (!(entry.lhs == lhs) || !(entry.rhs == rhs)) {
      ++stats_.collisions;
      return nullptr;
    }
    ++stats_.hits;
    return &entry.result;
  }

  /// O(1): bumps the generation, logically emptying the table.
  void clear() noexcept {
    ++generation_;
    ++stats_.invalidations;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return stats_.lookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return stats_.hits; }

  /// Visits every entry of the current generation as `f(lhs, rhs, result)`.
  /// Read-only introspection for the audit layer.
  template <typename F> void forEachLive(F&& f) const {
    for (const auto& entry : entries_) {
      if (entry.gen == generation_) {
        f(entry.lhs, entry.rhs, entry.result);
      }
    }
  }

private:
  struct Entry {
    LeftEdge lhs{};
    RightEdge rhs{};
    ResultEdge result{};
    std::uint64_t gen = 0; ///< 0 = never written (generation_ starts at 1)
  };

  [[nodiscard]] std::size_t hash(const LeftEdge& lhs,
                                 const RightEdge& rhs) const noexcept {
    std::size_t h = std::hash<const void*>{}(lhs.p);
    h = combineHash(h, hashWeight(lhs.w));
    h = combineHash(h, std::hash<const void*>{}(rhs.p));
    h = combineHash(h, hashWeight(rhs.w));
    return h & mask_;
  }

  std::size_t mask_;
  std::uint64_t generation_ = 1;
  std::vector<Entry> entries_; ///< allocated on first insert
  CacheStats stats_;
};

/// Direct-mapped, generation-stamped cache for unary DD operations keyed on
/// the node only.
template <typename Node, typename Result> class UnaryComputeTable {
public:
  static constexpr std::size_t kDefaultEntries = 1U << 14U;

  explicit UnaryComputeTable(const std::size_t numEntries = kDefaultEntries)
      : mask_(std::bit_ceil(numEntries < 2 ? std::size_t{2} : numEntries) -
              1) {}

  void insert(const Node* arg, const Result& result) {
    if (entries_.empty()) {
      entries_.resize(mask_ + 1);
    }
    auto& entry = entries_[hash(arg)];
    entry.arg = arg;
    entry.result = result;
    entry.gen = generation_;
    ++stats_.inserts;
  }

  [[nodiscard]] const Result* lookup(const Node* arg) {
    ++stats_.lookups;
    if (entries_.empty()) {
      return nullptr;
    }
    const auto& entry = entries_[hash(arg)];
    if (entry.gen != generation_) {
      return nullptr;
    }
    if (entry.arg != arg) {
      ++stats_.collisions;
      return nullptr;
    }
    ++stats_.hits;
    return &entry.result;
  }

  /// O(1): bumps the generation, logically emptying the table.
  void clear() noexcept {
    ++generation_;
    ++stats_.invalidations;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return stats_.lookups; }
  [[nodiscard]] std::size_t hits() const noexcept { return stats_.hits; }

  /// Visits every entry of the current generation as `f(arg, result)`.
  /// Read-only introspection for the audit layer.
  template <typename F> void forEachLive(F&& f) const {
    for (const auto& entry : entries_) {
      if (entry.gen == generation_) {
        f(entry.arg, entry.result);
      }
    }
  }

private:
  struct Entry {
    const Node* arg = nullptr;
    Result result{};
    std::uint64_t gen = 0;
  };

  [[nodiscard]] std::size_t hash(const Node* arg) const noexcept {
    return std::hash<const void*>{}(arg) & mask_;
  }

  std::size_t mask_;
  std::uint64_t generation_ = 1;
  std::vector<Entry> entries_;
  CacheStats stats_;
};

} // namespace veriqc::dd
