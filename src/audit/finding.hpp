/// \file finding.hpp
/// \brief Common result model of the invariant-audit layer.
///
/// Every auditor in veriqc_audit reports through the same `AuditFinding`
/// record so that callers — checkpoint hooks, mutation tests, the
/// `veriqc_lint` tool — can rank, print and serialize findings uniformly.
#pragma once

#include "ir/types.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace veriqc::audit {

enum class AuditSeverity : std::uint8_t {
  Info,    ///< observation, not a violation
  Warning, ///< suspicious but not provably corrupt
  Error,   ///< a structural invariant is violated
};

[[nodiscard]] const char* toString(AuditSeverity severity) noexcept;

/// One invariant violation (or observation).
struct AuditFinding {
  AuditSeverity severity = AuditSeverity::Error;
  /// Stable machine-readable key, e.g. "dd.unique.duplicate".
  std::string code;
  /// Human-readable description of the violation.
  std::string message;
  /// Where in the audited structure (or source file) it was found,
  /// e.g. "matrix level 3" or "foo.qasm:4:12".
  std::string location;

  [[nodiscard]] std::string toString() const;
};

/// Findings accumulated by one audit run.
struct AuditReport {
  std::vector<AuditFinding> findings;

  void add(AuditSeverity severity, std::string code, std::string message,
           std::string location = {});
  void merge(AuditReport other);

  [[nodiscard]] bool empty() const noexcept { return findings.empty(); }
  [[nodiscard]] std::size_t errorCount() const noexcept;
  [[nodiscard]] bool hasErrors() const noexcept { return errorCount() > 0; }

  /// All findings, one per line.
  [[nodiscard]] std::string toString() const;
};

/// Thrown by audit checkpoints when a report contains errors: a structural
/// invariant was violated, so any verdict derived from the structure can no
/// longer be trusted. The checker manager's exception firewall contains this
/// as an EngineError slot rather than letting it produce a wrong verdict.
class AuditError : public VeriqcError {
public:
  AuditError(const std::string& context, AuditReport report);

  [[nodiscard]] const AuditReport& report() const noexcept { return report_; }

private:
  AuditReport report_;
};

/// Audit levels. Level 0 disables auditing: checkpoints reduce to a single
/// integer compare (no structure is walked, nothing allocates). Level 1
/// audits at throttled checkpoints (every kCheckpointStride-th post-gate
/// checkpoint plus pass/engine boundaries). Level 2 audits every checkpoint.
inline constexpr int kAuditOff = 0;
inline constexpr int kAuditThrottled = 1;
inline constexpr int kAuditEveryCheckpoint = 2;

/// Post-gate checkpoints at level 1 audit every this-many gates.
inline constexpr std::size_t kCheckpointStride = 64;

/// The VERIQC_AUDIT environment override, read once and cached: "0"/"1"/"2"
/// (values above 2 clamp to 2; unset or unparsable reads as 0).
[[nodiscard]] int auditLevelFromEnv() noexcept;

/// The audit level in effect: max(configured, VERIQC_AUDIT).
[[nodiscard]] int effectiveAuditLevel(int configured) noexcept;

/// Throws AuditError when the report contains errors; no-op otherwise.
/// `context` names the checkpoint, e.g. "dd alternating checkpoint".
void requireClean(const AuditReport& report, const std::string& context);

} // namespace veriqc::audit
