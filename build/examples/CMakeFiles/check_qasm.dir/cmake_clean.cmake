file(REMOVE_RECURSE
  "CMakeFiles/check_qasm.dir/check_qasm.cpp.o"
  "CMakeFiles/check_qasm.dir/check_qasm.cpp.o.d"
  "check_qasm"
  "check_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
