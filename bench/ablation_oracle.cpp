/// \file ablation_oracle.cpp
/// \brief Ablation of the alternating checker's application oracle
///        (Sec. 4.1: "the strategy when to choose gates from which circuit
///        is dictated by an oracle"): naive vs. proportional vs. lookahead,
///        measured on compiled-circuit verification instances.
#include "table_common.hpp"

#include "check/dd_checkers.hpp"
#include "circuits/benchmarks.hpp"
#include "compile/architecture.hpp"
#include "compile/mapper.hpp"

#include <cstdio>

int main() {
  using namespace veriqc;
  const auto arch = compile::Architecture::ibmManhattanLike();

  std::vector<QuantumCircuit> originals;
  originals.push_back(circuits::ghz(16));
  originals.push_back(circuits::qft(8));
  originals.push_back(circuits::grover(4, 11));
  originals.push_back(circuits::quantumWalk(3, 3));

  std::printf("\nAblation: alternating-checker oracle strategies "
              "(equivalent compiled instances)\n");
  std::printf("%-20s %7s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n",
              "benchmark", "|G'|", "naive[s]", "nodes", "prop[s]", "nodes",
              "look[s]", "nodes", "flow[s]", "nodes");
  for (const auto& original : originals) {
    compile::ExpansionCounts counts;
    const auto compiled =
        compile::compileForArchitecture(original, arch, {}, &counts);
    std::printf("%-20s %7zu |", original.name().c_str(),
                compiled.gateCount());
    for (const auto oracle :
         {check::OracleStrategy::Naive, check::OracleStrategy::Proportional,
          check::OracleStrategy::Lookahead}) {
      check::Configuration config;
      config.oracle = oracle;
      const auto deadline =
          std::chrono::steady_clock::now() + bench::benchTimeout();
      const auto result =
          check::ddAlternatingCheck(original, compiled, config, [deadline] {
            return std::chrono::steady_clock::now() >= deadline;
          });
      std::printf(" %9.3f%s %10zu |", result.runtimeSeconds,
                  check::provedEquivalent(result.criterion) ? " " : "!",
                  result.peakNodes);
      std::fflush(stdout);
    }
    // The compilation-flow scheme (uses the compiler's expansion record).
    const auto deadline =
        std::chrono::steady_clock::now() + bench::benchTimeout();
    const auto flow = check::ddCompilationFlowCheck(
        original, compiled, counts, {}, [deadline] {
          return std::chrono::steady_clock::now() >= deadline;
        });
    std::printf(" %9.3f%s %10zu |\n", flow.runtimeSeconds,
                check::provedEquivalent(flow.criterion) ? " " : "!",
                flow.peakNodes);
    std::fflush(stdout);
  }
  std::printf("('!' marks runs without an equivalence verdict, e.g. "
              "timeouts)\n");
  return 0;
}
