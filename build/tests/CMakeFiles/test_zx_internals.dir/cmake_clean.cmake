file(REMOVE_RECURSE
  "CMakeFiles/test_zx_internals.dir/test_zx_internals.cpp.o"
  "CMakeFiles/test_zx_internals.dir/test_zx_internals.cpp.o.d"
  "test_zx_internals"
  "test_zx_internals.pdb"
  "test_zx_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
