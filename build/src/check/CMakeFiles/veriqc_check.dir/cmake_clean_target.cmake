file(REMOVE_RECURSE
  "libveriqc_check.a"
)
