
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_compile.cpp" "tests/CMakeFiles/test_compile.dir/test_compile.cpp.o" "gcc" "tests/CMakeFiles/test_compile.dir/test_compile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compile/CMakeFiles/veriqc_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/veriqc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/veriqc_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/dd/CMakeFiles/veriqc_dd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/veriqc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
