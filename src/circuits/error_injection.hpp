/// \file error_injection.hpp
/// \brief The two error models of the case study's non-equivalent
///        configurations: "1 Gate Missing" and "Flipped CNOT" (Sec. 6.1).
#pragma once

#include "ir/circuit.hpp"

#include <optional>
#include <random>

namespace veriqc::circuits {

/// Remove one randomly chosen unitary gate. Returns std::nullopt when the
/// circuit has no unitary gate to remove.
[[nodiscard]] std::optional<QuantumCircuit>
removeRandomGate(const QuantumCircuit& circuit, std::mt19937_64& rng);

/// Exchange control and target of one randomly chosen CNOT. Returns
/// std::nullopt when the circuit contains no CNOT.
[[nodiscard]] std::optional<QuantumCircuit>
flipRandomCnot(const QuantumCircuit& circuit, std::mt19937_64& rng);

} // namespace veriqc::circuits
