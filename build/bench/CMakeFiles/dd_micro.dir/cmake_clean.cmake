file(REMOVE_RECURSE
  "CMakeFiles/dd_micro.dir/dd_micro.cpp.o"
  "CMakeFiles/dd_micro.dir/dd_micro.cpp.o.d"
  "dd_micro"
  "dd_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dd_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
