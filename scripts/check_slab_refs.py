#!/usr/bin/env python3
"""Slab-reference lint for the DD kernel (src/dd).

The DD node store (NodeSlab) keeps nodes in flat SoA vectors; the accessors
`children(slot)` / `weights(slot)` hand out references *into* those vectors,
and the next allocating call (`lookup`, and everything that reaches it:
makeMatrixNode, add, multiply, the gate builders, ...) may reallocate the
backing storage and leave such a reference dangling. The same applies to the
`const Slot*` that RealTable::find returns, which `insert`/`grow` invalidate.
The safe idiom is a stack copy (`const auto xc = slab.children(...)`);
reference walks are fine only in provably non-allocating code (ref counting,
sweeps, trace/inner-product recursions, audits).

This checker enforces that contract: it flags every reference or pointer
binding to slab/real-table storage whose enclosing scope performs a
potentially-allocating call after the binding.

Engines:
  - `clang`: AST-based, driven by build/compile_commands.json through the
    libclang python bindings. Skipped gracefully (exit 0, with a notice)
    when the bindings or the compilation database are absent.
  - `lexical`: pure-python fallback that needs nothing but the sources.
    It understands brace scoping, comments and strings, which is enough to
    be exact on this codebase's idiom (`--self-test` proves it sharp).
  - `auto` (default): clang when available, lexical otherwise — so the lint
    always runs, everywhere.

Usage:
  scripts/check_slab_refs.py                 # lint src/dd with engine auto
  scripts/check_slab_refs.py --engine lexical src/dd
  scripts/check_slab_refs.py --self-test     # mutation sharpness check

--self-test first asserts the current tree is clean, then re-introduces a
set of historical reference-holding hazards (the exact bug class PR 6's
slab rewrite had to chase) into an in-memory copy of package.cpp and
asserts the lexical engine flags every one of them. A checker that cannot
re-find the bugs it was built for is worse than no checker; this keeps it
honest in CI and in `ctest -R slab_ref_lint`.

Exit codes: 0 clean (or gracefully skipped), 1 findings / failed self-test,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

# --- shared hazard model -----------------------------------------------------

# Accessors returning references/pointers into reallocatable storage.
STORAGE_ACCESSORS = ("children", "weights")
TABLE_FIND = "find"

# Calls that may reallocate slab storage. Direct table operations plus every
# Package helper that can transitively reach NodeSlab::lookup. Names, not
# overloads: lexical matching must stay conservative on the invalidating
# side to be sharp.
SLAB_ALLOCATING = {
    "allocateSlot",
    "rebuildBuckets",
    "garbageCollect",
    "makeIdent",
    "makeMatrixNode",
    "makeVectorNode",
    "makeGateDD",
    "makeSwapDD",
    "makeOperationDD",
    "makeZeroState",
    "makeBasisState",
    "multiply",
    "multiplyMatrixNodes",
    "multiplyVectorNodes",
    "add",
    "conjugateTranspose",
    "importMatrix",
    "cachedGateDD",
    "buildGateDD",
    "buildSwapDD",
}
# `lookup` only allocates on slab-like receivers (compute-table lookup is a
# read); the receiver check keeps trace/inner-product caches out of scope.
SLAB_RECEIVER = re.compile(r"(?:\bslab\w*|Slabs?_\s*\[[^\[\]]*\])\s*\.\s*$")
# RealTable::find pointers die on insert/grow/lookup (lookup may insert).
TABLE_ALLOCATING = {"insert", "grow", "lookup", "lookupSlow"}


@dataclass
class Finding:
    path: str
    line: int
    name: str
    kind: str  # "slab-ref" | "table-ptr"
    call: str
    call_line: int

    def render(self) -> str:
        what = (
            "reference into slab storage"
            if self.kind == "slab-ref"
            else "pointer into real-table storage"
        )
        return (
            f"{self.path}:{self.line}: {what} '{self.name}' is held across "
            f"potentially-allocating call '{self.call}' (line {self.call_line}); "
            f"copy to the stack before the call instead"
        )


# --- lexical engine ----------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and literals, preserving length and newlines."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


# A declaration that binds a reference to children()/weights() storage:
#   const auto& xc = slab.children(slotOfIndex(x));
#   const NodeSlab<mEdge>::Children& c = slab.children(slot);
#   const auto& cw = mSlabs_[v].weights(slot)[i];
REF_BINDING = re.compile(
    r"(?:const\s+)?(?:auto|[\w:]+(?:<[^;<>]*>)?(?:::\w+)*)\s*&\s*(\w+)\s*="
    r"[^;]*?\.\s*(?:children|weights)\s*\(",
)
# A pointer binding into RealTable storage: const Slot* s = find(k);
PTR_BINDING = re.compile(
    r"(?:const\s+)?(?:auto|[\w:]+(?:::\w+)*)\s*\*\s*(\w+)\s*="
    r"[^;]*?\bfind\s*\(",
)
CALL = re.compile(r"(\w+)\s*\(")


def brace_depths(text: str) -> list[int]:
    """Depth of each character position (depth after processing the char)."""
    depths = []
    d = 0
    for c in text:
        if c == "{":
            d += 1
        elif c == "}":
            d -= 1
        depths.append(d)
    return depths


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def scope_end(text: str, depths: list[int], pos: int, depth: int) -> int:
    """Index where the block enclosing `pos` (at `depth`) closes."""
    for i in range(pos, len(text)):
        if depths[i] < depth:
            return i
    return len(text)


def allocating_calls(segment: str, kind: str) -> list[tuple[str, int]]:
    """(name, offset) of potentially-allocating calls in `segment`."""
    hits = []
    names = SLAB_ALLOCATING if kind == "slab-ref" else TABLE_ALLOCATING
    for m in CALL.finditer(segment):
        name = m.group(1)
        if name in names:
            hits.append((name, m.start()))
        elif kind == "slab-ref" and name == "lookup":
            if SLAB_RECEIVER.search(segment, 0, m.start()):
                hits.append((name, m.start()))
    return hits


def scan_source(text: str, path: str) -> list[Finding]:
    cleaned = strip_comments_and_strings(text)
    depths = brace_depths(cleaned)
    findings = []
    for kind, pattern in (("slab-ref", REF_BINDING), ("table-ptr", PTR_BINDING)):
        for m in pattern.finditer(cleaned):
            # Depth at the declaration start = scope the binding lives in.
            decl_depth = depths[m.start()]
            if decl_depth <= 0:
                continue  # namespace scope: not a local binding
            end = scope_end(cleaned, depths, m.end(), decl_depth)
            segment = cleaned[m.end() : end]
            for call, offset in allocating_calls(segment, kind):
                findings.append(
                    Finding(
                        path=path,
                        line=line_of(cleaned, m.start()),
                        name=m.group(1),
                        kind=kind,
                        call=call,
                        call_line=line_of(cleaned, m.end() + offset),
                    )
                )
                break  # one finding per binding is enough
    return findings


def run_lexical(paths: list[str]) -> list[Finding]:
    findings = []
    for path in sorted(collect_sources(paths)):
        with open(path, encoding="utf-8") as f:
            findings.extend(scan_source(f.read(), path))
    return findings


def collect_sources(paths: list[str]) -> list[str]:
    out = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, _dirs, files in os.walk(path):
            for name in files:
                if name.endswith((".cpp", ".hpp", ".cc", ".h")):
                    out.append(os.path.join(root, name))
    return out


# --- libclang engine ---------------------------------------------------------


def run_clang(paths: list[str], compile_commands: str) -> list[Finding] | None:
    """AST-based scan; returns None when libclang is unavailable."""
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except cindex.LibclangError:
        return None
    db_dir = os.path.dirname(compile_commands)
    try:
        db = cindex.CompilationDatabase.fromDirectory(db_dir)
    except cindex.CompilationDatabaseError:
        return None

    sources = [p for p in collect_sources(paths) if p.endswith((".cpp", ".cc"))]
    findings: list[Finding] = []
    for src in sorted(sources):
        commands = db.getCompileCommands(os.path.abspath(src))
        if not commands:
            continue
        args = [a for a in list(commands[0].arguments)[1:] if a != src][:-1]
        tu = index.parse(src, args=args)
        findings.extend(_scan_tu(cindex, tu, src))
    return findings


def _scan_tu(cindex, tu, src: str) -> list:
    """Find reference VarDecls initialized from children()/weights()/find()
    whose enclosing compound statement later performs an allocating call."""
    findings = []
    kinds = cindex.CursorKind

    def storage_binding(decl):
        if decl.kind != kinds.VAR_DECL:
            return None
        spelling = decl.type.spelling
        is_ref = "&" in spelling
        is_ptr = spelling.rstrip().endswith("*")
        if not (is_ref or is_ptr):
            return None
        for node in decl.walk_preorder():
            if node.kind == kinds.CALL_EXPR:
                if node.spelling in STORAGE_ACCESSORS and is_ref:
                    return "slab-ref"
                if node.spelling == TABLE_FIND and is_ptr:
                    return "table-ptr"
        return None

    def walk(block):
        statements = list(block.get_children())
        for i, statement in enumerate(statements):
            for child in statement.walk_preorder():
                if child.kind == kinds.COMPOUND_STMT:
                    walk(child)
            binding = None
            if statement.kind == kinds.DECL_STMT:
                for decl in statement.get_children():
                    kind = storage_binding(decl)
                    if kind is not None:
                        binding = (decl, kind)
            if binding is None:
                continue
            decl, kind = binding
            names = SLAB_ALLOCATING if kind == "slab-ref" else TABLE_ALLOCATING
            for later in statements[i + 1 :]:
                for node in later.walk_preorder():
                    if node.kind == kinds.CALL_EXPR and (
                        node.spelling in names or node.spelling == "lookup"
                    ):
                        findings.append(
                            Finding(
                                path=src,
                                line=decl.location.line,
                                name=decl.spelling,
                                kind=kind,
                                call=node.spelling,
                                call_line=node.location.line,
                            )
                        )
                        return
        return

    for cursor in tu.cursor.walk_preorder():
        if cursor.kind == kinds.COMPOUND_STMT and cursor.location.file and \
                os.path.samefile(cursor.location.file.name, src):
            walk(cursor)
    return findings


# --- self-test ---------------------------------------------------------------

# Historical hazard shapes: each mutation rewrites one *safe stack copy* in
# package.cpp back into a reference binding, reintroducing the PR-6 bug class
# (reference into SoA storage held across an allocating recursion). The lint
# must flag every single one.
MUTATIONS = [
    (
        "multiplyMatrixNodes holds children refs across the allocating "
        "recursion",
        re.compile(
            r"const auto (xc) = (slab\.children\(slotOfIndex\(x\)\));"
        ),
        r"const auto& \1 = \2;",
    ),
    (
        "multiplyMatrixNodes holds weight refs across the allocating "
        "recursion",
        re.compile(
            r"const auto (yw) = (slab\.weights\(slotOfIndex\(y\)\));"
        ),
        r"const auto& \1 = \2;",
    ),
    (
        "multiplyVectorNodes holds matrix children refs across the "
        "allocating recursion",
        re.compile(
            r"const auto (mc) = "
            r"(mSlabs_\[static_cast<std::size_t>\(var\)\]"
            r"\.children\(slotOfIndex\(m\)\));"
        ),
        r"const auto& \1 = \2;",
    ),
    (
        "multiplyVectorNodes holds vector weight refs across the "
        "allocating recursion",
        re.compile(
            r"const auto (vw) = "
            r"(vSlabs_\[static_cast<std::size_t>\(var\)\]"
            r"\.weights\(slotOfIndex\(v\)\));"
        ),
        r"const auto& \1 = \2;",
    ),
    (
        "RealTable holds a find() pointer across the inserting miss path",
        re.compile(
            r"for \(const auto k : \{key, key - 1, key \+ 1\}\) \{\n"
            r"\s*const Slot\* slot = find\(k\);\n"
            r"\s*if \(slot != nullptr[^\n]*\n"
            r"\s*return slot->value;\n"
            r"\s*\}\n"
            r"\s*\}\n"
            r"\s*insert\(key, value\);"
        ),
        "const Slot* slot = find(key);\n"
        "  insert(key, value);\n"
        "  if (slot != nullptr && std::abs(slot->value - value) < "
        "tolerance_) {\n"
        "    return slot->value;\n"
        "  }",
    ),
]


def self_test(repo_root: str) -> int:
    package_cpp = os.path.join(repo_root, "src", "dd", "package.cpp")
    real_table_cpp = os.path.join(repo_root, "src", "dd", "real_table.cpp")
    dd_dir = os.path.join(repo_root, "src", "dd")

    clean = run_lexical([dd_dir])
    if clean:
        print("self-test FAILED: the current tree should be clean, but:")
        for finding in clean:
            print("  " + finding.render())
        return 1
    print(f"self-test: clean tree passes ({len(collect_sources([dd_dir]))} "
          f"files, 0 findings)")

    sources = {
        package_cpp: open(package_cpp, encoding="utf-8").read(),
        real_table_cpp: open(real_table_cpp, encoding="utf-8").read(),
    }
    failures = 0
    caught = 0
    for description, pattern, replacement in MUTATIONS:
        hit_any = False
        for path, text in sources.items():
            mutated, count = pattern.subn(replacement, text)
            if count == 0:
                continue
            hit_any = True
            findings = scan_source(mutated, path)
            if findings:
                caught += 1
                print(f"self-test: CAUGHT  [{description}]")
                print("    " + findings[0].render())
            else:
                failures += 1
                print(f"self-test: MISSED  [{description}] — mutation applied "
                      f"({count} site(s)) but no finding raised")
            break
        if not hit_any:
            failures += 1
            print(f"self-test: STALE   [{description}] — mutation pattern no "
                  f"longer matches any source; update MUTATIONS")
    print(f"self-test: {caught}/{len(MUTATIONS)} mutations caught, "
          f"{failures} failure(s)")
    return 1 if failures else 0


# --- entry point -------------------------------------------------------------


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser = argparse.ArgumentParser(
        description="Lint src/dd for references into reallocatable slab "
        "storage held across allocating calls."
    )
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(repo_root, "src", "dd")])
    parser.add_argument("--engine", choices=("auto", "clang", "lexical"),
                        default="auto")
    parser.add_argument("--compile-commands",
                        default=os.path.join(repo_root, "build",
                                             "compile_commands.json"))
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker still catches reintroduced "
                             "historical hazards")
    args = parser.parse_args()

    if args.self_test:
        return self_test(repo_root)

    findings = None
    engine = args.engine
    if engine in ("auto", "clang"):
        if os.path.exists(args.compile_commands):
            findings = run_clang(args.paths, args.compile_commands)
        if findings is None:
            if engine == "clang":
                print("check_slab_refs: libclang python bindings or "
                      "compile_commands.json unavailable; skipping "
                      "(engine=clang requested)")
                return 0
            engine = "lexical"
    if findings is None:
        findings = run_lexical(args.paths)

    if findings:
        for finding in findings:
            print(finding.render())
        print(f"check_slab_refs [{engine}]: {len(findings)} finding(s)")
        return 1
    print(f"check_slab_refs [{engine}]: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
