# Empty compiler generated dependencies file for veriqc_circuits.
# This may be replaced when dependencies are built.
