file(REMOVE_RECURSE
  "libveriqc_qasm.a"
)
