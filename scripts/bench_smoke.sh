#!/usr/bin/env bash
# Build Release, run the DD-kernel and ZX-engine microbenchmarks and write
# their JSON (timings + counters) to BENCH_dd_kernel.json / BENCH_zx.json at
# the repo root, so successive PRs accumulate a perf trajectory to compare
# against.
#
# Usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="BENCH_dd_kernel.json"
OUT_ZX="BENCH_zx.json"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target dd_micro zx_micro >/dev/null

"./$BUILD_DIR/bench/dd_micro" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  --benchmark_filter='BM_MakeGateDD|BM_MakeControlledGateDD|BM_BuildUnitary|BM_SimulationCheckThreads' \
  >"$OUT"

"./$BUILD_DIR/bench/zx_micro" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  --benchmark_filter='BM_GroverReduction|BM_CliffordReductionLarge|BM_EquivalenceReduction|BM_QftReduction' \
  >"$OUT_ZX"

echo "Wrote $OUT and $OUT_ZX"
echo
echo "=== cache-stats digest ==="
# Per-benchmark wall time plus the cache counters embedded in the JSON.
grep -E '"(name|real_time|gate_cache_hit_rate|compute_hit_rate|performed)"' \
  "$OUT" | sed -e 's/^[[:space:]]*//' -e 's/,$//'
echo
echo "=== zx digest ==="
grep -E '"(name|real_time|rewrites|spider_candidates)"' \
  "$OUT_ZX" | sed -e 's/^[[:space:]]*//' -e 's/,$//'
