#include "sim/stimuli.hpp"

namespace veriqc::sim {

std::string toString(const StimuliKind kind) {
  switch (kind) {
  case StimuliKind::Classical:
    return "classical";
  case StimuliKind::LocalQuantum:
    return "local-quantum";
  case StimuliKind::GlobalQuantum:
    return "global-quantum";
  }
  return "unknown";
}

QuantumCircuit generateStimulus(const StimuliKind kind,
                                const std::size_t nqubits,
                                std::mt19937_64& rng) {
  QuantumCircuit prep(nqubits, "stimulus");
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<double> angle(0.0, 2.0 * PI);
  switch (kind) {
  case StimuliKind::Classical:
    for (Qubit q = 0; q < nqubits; ++q) {
      if (coin(rng) == 1) {
        prep.x(q);
      }
    }
    break;
  case StimuliKind::LocalQuantum:
    for (Qubit q = 0; q < nqubits; ++q) {
      prep.u3(q, angle(rng), angle(rng), angle(rng));
    }
    break;
  case StimuliKind::GlobalQuantum: {
    for (Qubit q = 0; q < nqubits; ++q) {
      prep.u3(q, angle(rng), angle(rng), angle(rng));
    }
    // A random-target CX chain entangles all qubits.
    for (Qubit q = 0; q + 1 < nqubits; ++q) {
      prep.cx(q, q + 1);
    }
    for (Qubit q = 0; q < nqubits; ++q) {
      prep.u3(q, angle(rng), angle(rng), angle(rng));
    }
    break;
  }
  }
  return prep;
}

} // namespace veriqc::sim
