/// \file revlib.hpp
/// \brief Reader for RevLib `.real` reversible-circuit files — the format of
///        the reversible benchmark set the paper evaluates (urf2,
///        plus63mod4096, example2, ...; Wille et al., ISMVL 2008).
///
/// Supported: the header directives (.version .numvars .variables .inputs
/// .outputs .constants .garbage .begin .end), multiple-controlled Toffoli
/// gates (`t<n>`), Fredkin gates (`f<n>`), Peres gates (`p3`), controlled-V
/// and V-dagger (`v<n>`, `v+<n>`), and negative controls (leading `-` on a
/// control line name).
#pragma once

#include "ir/circuit.hpp"
#include "qasm/lexer.hpp"

#include <string>

namespace veriqc::qasm {

/// Parse RevLib `.real` source text.
/// \throws ParseError on malformed input or unsupported gate types.
[[nodiscard]] QuantumCircuit parseReal(const std::string& source,
                                       const std::string& name = "");

/// Parse a `.real` file. \throws std::runtime_error if unreadable.
[[nodiscard]] QuantumCircuit parseRealFile(const std::string& path);

} // namespace veriqc::qasm
