#include "ir/gate_matrix.hpp"
#include "ir/operation.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace veriqc {
namespace {

using cd = std::complex<double>;

void expectUnitary(const GateMatrix& m) {
  // m * m^dagger == I
  const cd a = m[0] * std::conj(m[0]) + m[1] * std::conj(m[1]);
  const cd b = m[0] * std::conj(m[2]) + m[1] * std::conj(m[3]);
  const cd c = m[2] * std::conj(m[0]) + m[3] * std::conj(m[1]);
  const cd d = m[2] * std::conj(m[2]) + m[3] * std::conj(m[3]);
  EXPECT_NEAR(std::abs(a - cd{1.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(b), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(c), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(d - cd{1.0}), 0.0, 1e-12);
}

class GateMatrixUnitaryTest : public ::testing::TestWithParam<OpType> {};

TEST_P(GateMatrixUnitaryTest, MatrixIsUnitary) {
  const auto type = GetParam();
  std::vector<double> params;
  for (std::size_t i = 0; i < numParameters(type); ++i) {
    params.push_back(0.3 + 0.7 * static_cast<double>(i));
  }
  expectUnitary(gateMatrix(type, params));
}

INSTANTIATE_TEST_SUITE_P(
    AllSingleQubitGates, GateMatrixUnitaryTest,
    ::testing::Values(OpType::I, OpType::H, OpType::X, OpType::Y, OpType::Z,
                      OpType::S, OpType::Sdg, OpType::T, OpType::Tdg,
                      OpType::SX, OpType::SXdg, OpType::RX, OpType::RY,
                      OpType::RZ, OpType::P, OpType::U2, OpType::U3));

class GateInverseTest : public ::testing::TestWithParam<OpType> {};

TEST_P(GateInverseTest, InverseMatrixIsAdjoint) {
  const auto type = GetParam();
  std::vector<double> params;
  for (std::size_t i = 0; i < numParameters(type); ++i) {
    params.push_back(0.4 * static_cast<double>(i + 1));
  }
  const Operation op(type, {}, {0}, params);
  const auto inv = op.inverse();
  const auto m = gateMatrix(op.type, op.params);
  const auto mi = gateMatrix(inv.type, inv.params);
  // m * mi == identity up to global phase: check |tr(m * mi)| == 2.
  const cd t = m[0] * mi[0] + m[1] * mi[2] + m[2] * mi[1] + m[3] * mi[3];
  EXPECT_NEAR(std::abs(t), 2.0, 1e-12)
      << toString(type) << " inverse incorrect";
}

INSTANTIATE_TEST_SUITE_P(
    AllSingleQubitGates, GateInverseTest,
    ::testing::Values(OpType::I, OpType::H, OpType::X, OpType::Y, OpType::Z,
                      OpType::S, OpType::Sdg, OpType::T, OpType::Tdg,
                      OpType::SX, OpType::SXdg, OpType::RX, OpType::RY,
                      OpType::RZ, OpType::P, OpType::U2, OpType::U3));

TEST(OperationTest, ValidateRejectsOutOfRange) {
  const Operation op(OpType::X, {}, {5});
  EXPECT_THROW(op.validate(3), CircuitError);
  EXPECT_NO_THROW(op.validate(6));
}

TEST(OperationTest, ValidateRejectsDuplicateQubits) {
  const Operation op(OpType::X, {1}, {1});
  EXPECT_THROW(op.validate(3), CircuitError);
}

TEST(OperationTest, ValidateRejectsWrongParamCount) {
  const Operation op(OpType::RZ, {}, {0}, {});
  EXPECT_THROW(op.validate(3), CircuitError);
}

TEST(OperationTest, ValidateRejectsSwapWithOneTarget) {
  const Operation op(OpType::SWAP, {}, {0});
  EXPECT_THROW(op.validate(3), CircuitError);
}

TEST(OperationTest, UsedQubitsContainsControlsAndTargets) {
  const Operation op(OpType::X, {2, 4}, {1});
  const auto used = op.usedQubits();
  EXPECT_EQ(used.size(), 3U);
  EXPECT_TRUE(op.actsOn(2));
  EXPECT_TRUE(op.actsOn(4));
  EXPECT_TRUE(op.actsOn(1));
  EXPECT_FALSE(op.actsOn(0));
}

TEST(OperationTest, IsInverseOfDetectsPairs) {
  const Operation s(OpType::S, {}, {0});
  const Operation sdg(OpType::Sdg, {}, {0});
  EXPECT_TRUE(s.isInverseOf(sdg));
  EXPECT_TRUE(sdg.isInverseOf(s));
  EXPECT_FALSE(s.isInverseOf(s));

  const Operation rz(OpType::RZ, {}, {0}, {0.5});
  const Operation rzInv(OpType::RZ, {}, {0}, {-0.5});
  EXPECT_TRUE(rz.isInverseOf(rzInv));
  EXPECT_FALSE(rz.isInverseOf(rz));

  const Operation h(OpType::H, {}, {0});
  EXPECT_TRUE(h.isInverseOf(h));
}

TEST(OperationTest, IsInverseOfIgnoresControlOrder) {
  const Operation a(OpType::X, {1, 2}, {0});
  const Operation b(OpType::X, {2, 1}, {0});
  EXPECT_TRUE(a.isInverseOf(b));
}

TEST(OperationTest, BareSwapDetection) {
  EXPECT_TRUE(Operation(OpType::SWAP, {}, {0, 1}).isBareSwap());
  EXPECT_FALSE(Operation(OpType::SWAP, {2}, {0, 1}).isBareSwap());
  EXPECT_FALSE(Operation(OpType::X, {}, {0}).isBareSwap());
}

TEST(OperationTest, ToStringShowsControlsAndParams) {
  const Operation op(OpType::P, {1}, {0}, {0.25});
  const auto str = op.toString();
  EXPECT_NE(str.find("cp"), std::string::npos);
  EXPECT_NE(str.find("0.25"), std::string::npos);
}

TEST(OperationTest, U2InverseIsU3) {
  const Operation u2(OpType::U2, {}, {0}, {0.3, 0.7});
  const auto inv = u2.inverse();
  EXPECT_EQ(inv.type, OpType::U3);
  EXPECT_EQ(inv.params.size(), 3U);
}

} // namespace
} // namespace veriqc
