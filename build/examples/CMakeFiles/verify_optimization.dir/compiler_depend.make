# Empty compiler generated dependencies file for verify_optimization.
# This may be replaced when dependencies are built.
