
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compile/architecture.cpp" "src/compile/CMakeFiles/veriqc_compile.dir/architecture.cpp.o" "gcc" "src/compile/CMakeFiles/veriqc_compile.dir/architecture.cpp.o.d"
  "/root/repo/src/compile/decompose.cpp" "src/compile/CMakeFiles/veriqc_compile.dir/decompose.cpp.o" "gcc" "src/compile/CMakeFiles/veriqc_compile.dir/decompose.cpp.o.d"
  "/root/repo/src/compile/mapper.cpp" "src/compile/CMakeFiles/veriqc_compile.dir/mapper.cpp.o" "gcc" "src/compile/CMakeFiles/veriqc_compile.dir/mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/veriqc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
