#include "zx/simplify.hpp"

#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

namespace veriqc::zx {

namespace {
using Clock = std::chrono::steady_clock;
}

double SimplifyStats::totalSeconds() const noexcept {
  double sum = 0.0;
  for (const auto& rule : rules) {
    sum += rule.seconds;
  }
  return sum;
}

std::vector<SimplifyStats::NamedRuleStats> SimplifyStats::activeRules() const {
  std::vector<NamedRuleStats> active;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].candidates > 0) {
      active.push_back({kSimplifyRuleNames[i], rules[i]});
    }
  }
  return active;
}

void SimplifyStats::merge(const SimplifyStats& other) noexcept {
  spiderFusions += other.spiderFusions;
  idRemovals += other.idRemovals;
  localComplementations += other.localComplementations;
  pivots += other.pivots;
  gadgetPivots += other.gadgetPivots;
  boundaryPivots += other.boundaryPivots;
  gadgetFusions += other.gadgetFusions;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rules[i].candidates += other.rules[i].candidates;
    rules[i].matches += other.rules[i].matches;
    rules[i].rewrites += other.rules[i].rewrites;
    rules[i].seconds += other.rules[i].seconds;
  }
}

std::string SimplifyStats::digest() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [rule, r] : activeRules()) {
    if (!first) {
      os << "; ";
    }
    first = false;
    os << rule << " r" << r.rewrites << "/m" << r.matches << "/c"
       << r.candidates << " " << std::fixed << std::setprecision(2)
       << r.seconds * 1e3 << "ms";
  }
  return os.str();
}

// --- worklist ----------------------------------------------------------------

void Simplifier::Worklist::reset(const ZXDiagram& g) {
  reset(g, 0, g.vertexBound());
}

void Simplifier::Worklist::reset(const ZXDiagram& g, const Vertex lo,
                                 const Vertex hi) {
  generation_ += 2; // invalidates both current- and next-sweep stamps
  sweep_.clear();
  nextSweep_.clear();
  position_ = -1;
  const auto bound = static_cast<std::size_t>(g.vertexBound());
  if (stamp_.size() < bound) {
    stamp_.resize(bound, 0);
  }
  const Vertex end = std::min(hi, static_cast<Vertex>(bound));
  for (Vertex v = lo; v < end; ++v) {
    if (g.isPresent(v)) {
      sweep_.push_back(v); // ascending: already a valid min-heap
      stamp_[v] = generation_;
    }
  }
}

void Simplifier::Worklist::push(const Vertex v) {
  if (v >= stamp_.size()) {
    stamp_.resize(static_cast<std::size_t>(v) + 1, 0);
  }
  if (stamp_[v] >= generation_) {
    return; // already pending
  }
  if (static_cast<std::int64_t>(v) > position_) {
    stamp_[v] = generation_;
    sweep_.push_back(v);
    std::push_heap(sweep_.begin(), sweep_.end(), std::greater<>{});
  } else {
    stamp_[v] = generation_ + 1;
    nextSweep_.push_back(v);
    std::push_heap(nextSweep_.begin(), nextSweep_.end(), std::greater<>{});
  }
}

Vertex Simplifier::Worklist::pop() {
  if (sweep_.empty()) {
    ++generation_;
    sweep_.swap(nextSweep_);
    position_ = -1;
  }
  std::pop_heap(sweep_.begin(), sweep_.end(), std::greater<>{});
  const Vertex v = sweep_.back();
  sweep_.pop_back();
  position_ = static_cast<std::int64_t>(v);
  stamp_[v] = 0;
  return v;
}

std::vector<std::string> Simplifier::Worklist::checkInvariant() const {
  std::vector<std::string> issues;
  if (!std::is_heap(sweep_.begin(), sweep_.end(), std::greater<>{})) {
    issues.emplace_back("current sweep is not a min-heap");
  }
  if (!std::is_heap(nextSweep_.begin(), nextSweep_.end(), std::greater<>{})) {
    issues.emplace_back("next sweep is not a min-heap");
  }
  std::vector<Vertex> queued;
  queued.reserve(sweep_.size() + nextSweep_.size());
  const auto checkEntries = [&](const std::vector<Vertex>& heap,
                                const std::uint64_t expectedStamp,
                                const char* name) {
    for (const Vertex v : heap) {
      queued.push_back(v);
      if (v >= stamp_.size()) {
        issues.push_back(std::string(name) + " entry " + std::to_string(v) +
                         " has no stamp slot");
        continue;
      }
      if (stamp_[v] != expectedStamp) {
        issues.push_back(std::string(name) + " entry " + std::to_string(v) +
                         " stamped " + std::to_string(stamp_[v]) +
                         ", expected " + std::to_string(expectedStamp));
      }
    }
  };
  checkEntries(sweep_, generation_, "current sweep");
  checkEntries(nextSweep_, generation_ + 1, "next sweep");
  std::sort(queued.begin(), queued.end());
  for (std::size_t i = 1; i < queued.size(); ++i) {
    if (queued[i] == queued[i - 1]) {
      issues.push_back("vertex " + std::to_string(queued[i]) +
                       " queued more than once");
    }
  }
  for (std::size_t i = 0; i < stamp_.size(); ++i) {
    if (stamp_[i] < generation_) {
      continue; // not pending
    }
    if (stamp_[i] > generation_ + 1) {
      issues.push_back("vertex " + std::to_string(i) +
                       " has out-of-range stamp " + std::to_string(stamp_[i]));
    }
    if (!std::binary_search(queued.begin(), queued.end(),
                            static_cast<Vertex>(i))) {
      issues.push_back("vertex " + std::to_string(i) +
                       " stamped pending but missing from both sweeps");
    }
  }
  return issues;
}

// --- simplifier --------------------------------------------------------------

Simplifier::Simplifier(ZXDiagram& diagram, std::function<bool()> shouldStop,
                       SimplifierOptions options)
    : g_(diagram), shouldStop_(std::move(shouldStop)), options_(options) {}

void Simplifier::enforceVertexBudget() const {
  if (options_.maxVertices != 0 && g_.vertexCount() > options_.maxVertices) {
    throw ResourceLimitError("ZX vertices", options_.maxVertices,
                             g_.vertexCount());
  }
}

bool Simplifier::isInterior(const Vertex v) const {
  return g_.isPresent(v) && !g_.isBoundary(v);
}

bool Simplifier::isInteriorZ(const Vertex v) const {
  return g_.isPresent(v) && g_.type(v) == VertexType::Z;
}

bool Simplifier::allNeighborsInteriorViaHadamard(const Vertex v) const {
  for (const auto& [w, mult] : g_.neighbors(v)) {
    if (w == v || mult.simple != 0 || mult.hadamard != 1 || !isInteriorZ(w)) {
      return false;
    }
  }
  return true;
}

bool Simplifier::allEdgesHadamardToSpiders(const Vertex v) const {
  for (const auto& [w, mult] : g_.neighbors(v)) {
    if (w == v) {
      return false;
    }
    if (g_.isBoundary(w)) {
      if (mult.total() != 1) {
        return false;
      }
      continue;
    }
    if (mult.simple != 0 || mult.hadamard != 1 || !isInteriorZ(w)) {
      return false;
    }
  }
  return true;
}

template <typename TryRule>
std::size_t Simplifier::runPass(const SimplifyRule rule, TryRule&& tryRule) {
  auto& rs = stats_.rules[static_cast<std::size_t>(rule)];
  const auto start = Clock::now();
  enforceVertexBudget();
  if (regionMode_) {
    worklist_.reset(g_, regionLo_, regionHi_);
  } else {
    worklist_.reset(g_);
  }
  std::size_t count = 0;
  while (!worklist_.empty()) {
    const Vertex v = worklist_.pop();
    ++rs.candidates;
    // Poll the stop token and the vertex budget at a throttle: rewrites are
    // individually sound, so letting a handful through after a stop request
    // (or a few vertices past the budget) is harmless.
    if ((rs.candidates & 15U) == 0) {
      if (stopping()) {
        break;
      }
      enforceVertexBudget();
      VERIQC_FAULT_POINT(fault::points::kZXDrain,
                         fault::FaultKind::ResourceLimit);
    }
    const std::size_t applied = tryRule(v);
    if (applied > 0) {
      ++rs.matches;
      count += applied;
    }
  }
  rs.rewrites += count;
  rs.seconds += std::chrono::duration<double>(Clock::now() - start).count();
  return count;
}

void Simplifier::touchNeighborhood(const Vertex v) {
  if (!g_.isPresent(v)) {
    return;
  }
  worklist_.push(v);
  for (const auto& [w, mult] : g_.neighbors(v)) {
    worklist_.push(w);
  }
}

void Simplifier::touchNeighborhood2(const Vertex v) {
  if (!g_.isPresent(v)) {
    return;
  }
  worklist_.push(v);
  for (const auto& [w, mult] : g_.neighbors(v)) {
    touchNeighborhood(w);
  }
}

void Simplifier::normalizeVertex(const Vertex v) {
  const auto loops = g_.edge(v, v);
  if (loops.total() == 0) {
    return;
  }
  g_.removeAllEdges(v, v);
  if (loops.hadamard % 2 == 1) {
    g_.addPhase(v, PiRational::pi());
  }
}

void Simplifier::normalizePair(const Vertex u, const Vertex v) {
  if (u == v || !isInteriorZ(u) || !isInteriorZ(v)) {
    return;
  }
  const auto mult = g_.edge(u, v);
  // Parallel Hadamard edges between Z spiders cancel pairwise (Hopf law).
  for (int i = 0; i + 1 < mult.hadamard; i += 2) {
    g_.removeEdge(u, v, EdgeType::Hadamard);
    g_.removeEdge(u, v, EdgeType::Hadamard);
  }
}

void Simplifier::fuse(const Vertex u, const Vertex v) {
  g_.addPhase(u, g_.phase(v));
  const auto vAdj = g_.neighbors(v); // copy
  for (const auto& [w, mult] : vAdj) {
    if (w == v) {
      for (int i = 0; i < mult.simple; ++i) {
        g_.addEdge(u, u, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(u, u, EdgeType::Hadamard);
      }
    } else if (w == u) {
      // One plain edge is consumed by the fusion; the rest become loops.
      for (int i = 0; i + 1 < mult.simple; ++i) {
        g_.addEdge(u, u, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(u, u, EdgeType::Hadamard);
      }
    } else {
      for (int i = 0; i < mult.simple; ++i) {
        g_.addEdge(u, w, EdgeType::Simple);
      }
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(u, w, EdgeType::Hadamard);
      }
    }
  }
  g_.removeVertex(v);
  normalizeVertex(u);
  const auto uAdj = g_.neighbors(u); // copy for safe normalization
  for (const auto& [w, mult] : uAdj) {
    normalizePair(u, w);
  }
  // The merged vertex and everything it touches (including neighbors whose
  // parallel Hadamard pairs just cancelled) are fresh rule candidates.
  worklist_.push(u);
  for (const auto& [w, mult] : uAdj) {
    worklist_.push(w);
  }
  ++stats_.spiderFusions;
}

std::size_t Simplifier::trySpider(const Vertex v) {
  if (!isInteriorZ(v)) {
    return 0;
  }
  std::size_t applied = 0;
  bool fusedSomething = true;
  while (fusedSomething && g_.isPresent(v)) {
    // Every fusion extends v's neighborhood, so region ownership has to be
    // re-established before each rewrite, not only at candidacy.
    if (!ownsRegion(v)) {
      break;
    }
    fusedSomething = false;
    for (const auto& [w, mult] : g_.neighbors(v)) {
      // Region mode only fuses upward (w > v): the sequential ascending
      // sweep always keeps the component-minimal id as the survivor, and
      // preserving that invariant is what makes the region-parallel
      // pre-pass land on the same diagram and SimplifyStats totals.
      if (w != v && mult.simple > 0 && isInteriorZ(w) &&
          (!regionMode_ || w > v)) {
        fuse(v, w);
        ++applied;
        fusedSomething = true;
        break; // adjacency changed; restart neighbor scan
      }
    }
  }
  return applied;
}

std::size_t Simplifier::spiderSimp() {
  return runPass(SimplifyRule::Spider,
                 [this](const Vertex v) { return trySpider(v); });
}

void Simplifier::toGraphLike() {
  toZForm();
  finishGraphLike();
}

void Simplifier::toZForm() {
  for (const auto v : g_.vertices()) {
    if (!g_.isPresent(v) || g_.type(v) != VertexType::X) {
      continue;
    }
    const auto adj = g_.neighbors(v); // copy
    for (const auto& [w, mult] : adj) {
      if (w == v) {
        continue; // both loop endpoints toggle: type is unchanged
      }
      g_.removeAllEdges(v, w);
      for (int i = 0; i < mult.hadamard; ++i) {
        g_.addEdge(v, w, EdgeType::Simple);
      }
      for (int i = 0; i < mult.simple; ++i) {
        g_.addEdge(v, w, EdgeType::Hadamard);
      }
    }
    g_.setType(v, VertexType::Z);
  }
  for (const auto v : g_.vertices()) {
    if (isInteriorZ(v)) {
      normalizeVertex(v);
    }
  }
}

void Simplifier::finishGraphLike() {
  spiderSimp();
  for (const auto v : g_.vertices()) {
    if (!isInteriorZ(v)) {
      continue;
    }
    const auto adj = g_.neighbors(v);
    for (const auto& [w, mult] : adj) {
      normalizePair(v, w);
    }
  }
}

std::size_t Simplifier::tryId(const Vertex v) {
  if (!isInteriorZ(v) || !g_.phase(v).isZero() ||
      g_.edge(v, v).total() != 0 || g_.degree(v) != 2) {
    return 0;
  }
  if (regionMode_) {
    if (!ownsRegion(v)) {
      return 0;
    }
    // Leave spider-fusible vertices to the spider rule: the sequential
    // engine reaches the spider fixpoint before its first id pass, so
    // removing such a vertex here would trade a spiderFusion for an
    // idRemoval and break stats parity with the sequential run.
    for (const auto& [w, mult] : g_.neighbors(v)) {
      if (w != v && mult.simple > 0 && isInteriorZ(w)) {
        return 0;
      }
    }
  }
  const auto& adj = g_.neighbors(v);
  if (adj.size() == 1) {
    // Both edges go to the same neighbor: removal leaves a self-loop.
    const Vertex w = adj.front().vertex;
    const auto mult = adj.front().edges;
    if (g_.isBoundary(w)) {
      return 0; // malformed boundary; leave untouched
    }
    const bool loopIsHadamard = (mult.hadamard % 2) == 1;
    g_.removeVertex(v);
    if (loopIsHadamard) {
      g_.addPhase(w, PiRational::pi());
    }
    ++stats_.idRemovals;
    touchNeighborhood(w);
    return 1;
  }
  const Vertex w1 = adj[0].vertex;
  const Vertex w2 = adj[1].vertex;
  const bool h1 = adj[0].edges.hadamard == 1;
  const bool h2 = adj[1].edges.hadamard == 1;
  g_.removeVertex(v);
  const EdgeType combined = (h1 != h2) ? EdgeType::Hadamard
                                       : EdgeType::Simple;
  g_.addEdge(w1, w2, combined);
  ++stats_.idRemovals;
  if (isInteriorZ(w1) && isInteriorZ(w2)) {
    if (g_.edge(w1, w2).simple > 0) {
      fuse(w1, w2);
    } else {
      normalizePair(w1, w2);
    }
  }
  touchNeighborhood(w1);
  touchNeighborhood(w2);
  return 1;
}

std::size_t Simplifier::idSimp() {
  return runPass(SimplifyRule::Id,
                 [this](const Vertex v) { return tryId(v); });
}

void Simplifier::toggleHadamard(const Vertex a, const Vertex b) {
  if (g_.edge(a, b).hadamard > 0) {
    g_.removeEdge(a, b, EdgeType::Hadamard);
  } else {
    g_.addEdge(a, b, EdgeType::Hadamard);
  }
}

std::size_t Simplifier::tryLcomp(const Vertex v) {
  if (!isInteriorZ(v) || !g_.phase(v).isProperClifford() ||
      g_.edge(v, v).total() != 0 || !allNeighborsInteriorViaHadamard(v)) {
    return 0;
  }
  std::vector<Vertex> neighborhood;
  neighborhood.reserve(g_.neighbors(v).size());
  for (const auto& [w, mult] : g_.neighbors(v)) {
    neighborhood.push_back(w);
  }
  const PiRational delta = -g_.phase(v);
  g_.removeVertex(v);
  for (std::size_t i = 0; i < neighborhood.size(); ++i) {
    for (std::size_t j = i + 1; j < neighborhood.size(); ++j) {
      toggleHadamard(neighborhood[i], neighborhood[j]);
    }
  }
  for (const auto w : neighborhood) {
    g_.addPhase(w, delta);
  }
  for (const auto w : neighborhood) {
    touchNeighborhood(w);
  }
  ++stats_.localComplementations;
  return 1;
}

std::size_t Simplifier::lcompSimp() {
  return runPass(SimplifyRule::Lcomp,
                 [this](const Vertex v) { return tryLcomp(v); });
}

void Simplifier::pivot(const Vertex u, const Vertex v, const int touchDepth) {
  std::vector<Vertex> exclusiveU;
  std::vector<Vertex> exclusiveV;
  std::vector<Vertex> common;
  for (const auto& [w, mult] : g_.neighbors(u)) {
    if (w == v) {
      continue;
    }
    if (g_.connected(v, w)) {
      common.push_back(w);
    } else {
      exclusiveU.push_back(w);
    }
  }
  for (const auto& [w, mult] : g_.neighbors(v)) {
    if (w != u && !g_.connected(u, w)) {
      exclusiveV.push_back(w);
    }
  }
  const PiRational pu = g_.phase(u);
  const PiRational pv = g_.phase(v);
  g_.removeVertex(u);
  g_.removeVertex(v);
  for (const auto a : exclusiveU) {
    for (const auto b : exclusiveV) {
      toggleHadamard(a, b);
    }
  }
  for (const auto a : exclusiveU) {
    for (const auto c : common) {
      toggleHadamard(a, c);
    }
  }
  for (const auto b : exclusiveV) {
    for (const auto c : common) {
      toggleHadamard(b, c);
    }
  }
  for (const auto a : exclusiveU) {
    g_.addPhase(a, pv);
  }
  for (const auto b : exclusiveV) {
    g_.addPhase(b, pu);
  }
  for (const auto c : common) {
    g_.addPhase(c, pu + pv + PiRational::pi());
  }
  // Everything whose edges or phase changed — and its neighbors, whose
  // match status can depend on those phases and edges — goes back on the
  // worklist.
  const auto touch = [this, touchDepth](const Vertex x) {
    if (touchDepth >= 2) {
      touchNeighborhood2(x);
    } else {
      touchNeighborhood(x);
    }
  };
  for (const auto a : exclusiveU) {
    touch(a);
  }
  for (const auto b : exclusiveV) {
    touch(b);
  }
  for (const auto c : common) {
    touch(c);
  }
}

std::size_t Simplifier::tryPivot(const Vertex u) {
  if (!isInteriorZ(u) || !g_.phase(u).isPauli() ||
      !allNeighborsInteriorViaHadamard(u)) {
    return 0;
  }
  for (const auto& [v, mult] : g_.neighbors(u)) {
    if (mult.hadamard != 1 || !g_.phase(v).isPauli() ||
        !allNeighborsInteriorViaHadamard(v)) {
      continue;
    }
    pivot(u, v);
    ++stats_.pivots;
    return 1; // u is gone; adjacency iterators are invalid
  }
  return 0;
}

std::size_t Simplifier::pivotSimp() {
  return runPass(SimplifyRule::Pivot,
                 [this](const Vertex u) { return tryPivot(u); });
}

void Simplifier::gadgetize(const Vertex v) {
  const Vertex hub = g_.addVertex(VertexType::Z);
  const Vertex leaf = g_.addVertex(VertexType::Z, g_.phase(v));
  g_.addEdge(v, hub, EdgeType::Hadamard);
  g_.addEdge(hub, leaf, EdgeType::Hadamard);
  g_.setPhase(v, PiRational{});
  worklist_.push(v);
  worklist_.push(hub);
  worklist_.push(leaf);
}

std::size_t Simplifier::tryPivotGadget(const Vertex u) {
  // Termination: each rewrite keeps the spider count constant but strictly
  // decreases the number of non-Pauli spiders of degree >= 2 — provided the
  // pivot cannot grow an existing gadget leaf's degree, hence the
  // no-leaf-neighbor guard on both pivot vertices.
  const auto hasLeafNeighbor = [this](const Vertex x) {
    for (const auto& [w, mult] : g_.neighbors(x)) {
      if (!g_.isBoundary(w) && g_.degree(w) == 1) {
        return true;
      }
    }
    return false;
  };
  if (!isInteriorZ(u) || !g_.phase(u).isPauli() ||
      !allNeighborsInteriorViaHadamard(u) || hasLeafNeighbor(u)) {
    return 0;
  }
  for (const auto& [v, mult] : g_.neighbors(u)) {
    if (mult.hadamard != 1 || g_.phase(v).isPauli() || g_.degree(v) < 2 ||
        !allNeighborsInteriorViaHadamard(v) || hasLeafNeighbor(v)) {
      continue;
    }
    gadgetize(v);
    pivot(u, v, 2);
    ++stats_.gadgetPivots;
    return 1; // u is gone; adjacency iterators are invalid
  }
  return 0;
}

std::size_t Simplifier::pivotGadgetSimp() {
  return runPass(SimplifyRule::PivotGadget,
                 [this](const Vertex u) { return tryPivotGadget(u); });
}

void Simplifier::unfuseBoundary(const Vertex b, const Vertex v) {
  const auto mult = g_.edge(b, v);
  const EdgeType original =
      mult.hadamard > 0 ? EdgeType::Hadamard : EdgeType::Simple;
  g_.removeEdge(b, v, original);
  const Vertex w = g_.addVertex(VertexType::Z);
  g_.addEdge(b, w,
             original == EdgeType::Simple ? EdgeType::Hadamard
                                          : EdgeType::Simple);
  g_.addEdge(w, v, EdgeType::Hadamard);
  worklist_.push(v);
  worklist_.push(w);
}

std::size_t Simplifier::tryPivotBoundary(const Vertex u) {
  // Termination measure: each rewrite removes one interior Pauli spider (u)
  // with no boundary contact, and only adds boundary-adjacent phase-0
  // spiders — so u must be strictly interior, v carries the boundary edges.
  if (!isInteriorZ(u) || !g_.phase(u).isPauli() ||
      !allNeighborsInteriorViaHadamard(u)) {
    return 0;
  }
  for (const auto& [v, mult] : g_.neighbors(u)) {
    if (mult.hadamard != 1 || !g_.phase(v).isPauli() ||
        !allEdgesHadamardToSpiders(v)) {
      continue;
    }
    std::vector<Vertex> boundaries;
    for (const auto& [w, m2] : g_.neighbors(v)) {
      if (g_.isBoundary(w)) {
        boundaries.push_back(w);
      }
    }
    if (boundaries.empty()) {
      continue; // plain pivotSimp covers the fully interior case
    }
    for (const auto b : boundaries) {
      unfuseBoundary(b, v);
    }
    pivot(u, v, 2);
    ++stats_.boundaryPivots;
    return 1; // u is gone; adjacency iterators are invalid
  }
  return 0;
}

std::size_t Simplifier::pivotBoundarySimp() {
  return runPass(SimplifyRule::PivotBoundary,
                 [this](const Vertex u) { return tryPivotBoundary(u); });
}

std::size_t Simplifier::gadgetSimp() {
  // Gadgets keyed by the hub's neighborhood (excluding the leaf); the flat
  // adjacency is sorted, so keys come out canonical without extra sorting.
  // Entries persist across the whole pass and are validated lazily on hit:
  // a fusion only perturbs hubs adjacent to the removed hub, whose leaves
  // get re-enqueued and re-registered.
  std::map<std::vector<Vertex>, std::pair<Vertex, Vertex>> seen;
  const auto gadgetKey =
      [this](const Vertex hub,
             const Vertex leaf) -> std::optional<std::vector<Vertex>> {
    std::vector<Vertex> key;
    for (const auto& [w, mult] : g_.neighbors(hub)) {
      if (w == leaf) {
        continue;
      }
      if (mult.hadamard != 1 || mult.simple != 0) {
        return std::nullopt;
      }
      key.push_back(w);
    }
    if (key.empty()) {
      return std::nullopt;
    }
    return key;
  };
  return runPass(
      SimplifyRule::Gadget, [this, &seen, &gadgetKey](const Vertex leaf) {
        if (!isInteriorZ(leaf) || g_.degree(leaf) != 1) {
          return std::size_t{0};
        }
        const auto& adj = g_.neighbors(leaf);
        const Vertex hub = adj.front().vertex;
        if (adj.front().edges.hadamard != 1 || !isInteriorZ(hub) ||
            !g_.phase(hub).isZero()) {
          return std::size_t{0};
        }
        const auto key = gadgetKey(hub, leaf);
        if (!key) {
          return std::size_t{0};
        }
        const auto it = seen.find(*key);
        if (it == seen.end()) {
          seen.emplace(*key, std::pair{hub, leaf});
          return std::size_t{0};
        }
        const auto [hub0, leaf0] = it->second;
        if (hub0 == hub) {
          return std::size_t{0}; // two leaves on one hub; other rules apply
        }
        const bool stillGadget =
            g_.isPresent(hub0) && g_.isPresent(leaf0) && isInteriorZ(leaf0) &&
            g_.degree(leaf0) == 1 && g_.edge(leaf0, hub0).hadamard == 1 &&
            isInteriorZ(hub0) && g_.phase(hub0).isZero() &&
            gadgetKey(hub0, leaf0) == key;
        if (!stillGadget) {
          it->second = {hub, leaf};
          return std::size_t{0};
        }
        g_.addPhase(leaf0, g_.phase(leaf));
        const auto hubAdj = g_.neighbors(hub); // copy: removal invalidates
        g_.removeVertex(leaf);
        g_.removeVertex(hub);
        for (const auto& [w, mult] : hubAdj) {
          if (w != leaf) {
            touchNeighborhood(w);
          }
        }
        ++stats_.gadgetFusions;
        return std::size_t{1};
      });
}

std::size_t Simplifier::interiorCliffordSimp() {
  spiderSimp();
  std::size_t total = 0;
  while (!stopping()) {
    std::size_t round = 0;
    round += idSimp();
    round += spiderSimp();
    round += pivotSimp();
    round += lcompSimp();
    if (round == 0) {
      break;
    }
    total += round;
  }
  return total;
}

std::size_t Simplifier::cliffordSimp() {
  std::size_t total = 0;
  while (!stopping()) {
    total += interiorCliffordSimp();
    const auto boundary = pivotBoundarySimp();
    total += boundary;
    if (boundary == 0) {
      break;
    }
  }
  return total;
}

bool Simplifier::ownsRegion(const Vertex v) const {
  if (!regionMode_) {
    return true;
  }
  const auto inRegion = [this](const Vertex w) {
    return w >= regionLo_ && w < regionHi_;
  };
  if (!inRegion(v)) {
    return false;
  }
  // Inside-out: establish that every direct neighbor is in-region *before*
  // reading any neighbor's adjacency row — rows outside the region may be
  // written by their owning region concurrently.
  const auto& adj = g_.neighbors(v);
  for (const auto& [w, mult] : adj) {
    if (!inRegion(w)) {
      return false;
    }
  }
  for (const auto& [w, mult] : adj) {
    for (const auto& [x, mult2] : g_.neighbors(w)) {
      if (!inRegion(x)) {
        return false;
      }
    }
  }
  return true;
}

void Simplifier::regionFixpoint() {
  // Fires inside the region worker task, so the throw travels through the
  // region executor (TaskPool) rather than the calling thread.
  VERIQC_FAULT_POINT(fault::points::kZXRegionPrepass,
                     fault::FaultKind::ResourceLimit);
  while (!stopping()) {
    const std::size_t round = spiderSimp() + idSimp();
    if (round == 0) {
      break;
    }
  }
}

void Simplifier::parallelPrepass() {
  const std::size_t regions = options_.parallelRegions;
  if (regions <= 1 || !options_.regionExecutor) {
    return;
  }
  // Distribution has fixed costs (sub-simplifier state, guard checks); tiny
  // diagrams finish faster sequentially.
  constexpr std::size_t kMinVerticesPerRegion = 64;
  const std::size_t live = g_.vertexCount();
  if (live < regions * kMinVerticesPerRegion) {
    return;
  }
  // Contiguous id ranges with (nearly) equal live-vertex counts. Circuit
  // diagrams allocate ids along the gate sequence, so contiguous ranges are
  // also spatially coherent — most edges stay inside one region.
  const Vertex bound = g_.vertexBound();
  std::vector<std::pair<Vertex, Vertex>> ranges;
  ranges.reserve(regions);
  {
    Vertex cursor = 0;
    std::size_t counted = 0;
    for (std::size_t r = 0; r + 1 < regions; ++r) {
      const Vertex lo = cursor;
      const std::size_t target = live * (r + 1) / regions;
      while (cursor < bound && counted < target) {
        counted += g_.isPresent(cursor) ? 1 : 0;
        ++cursor;
      }
      ranges.emplace_back(lo, cursor);
    }
    ranges.emplace_back(cursor, bound);
  }
  SimplifierOptions subOptions = options_;
  subOptions.parallelRegions = 1;
  subOptions.regionExecutor = nullptr;
  std::vector<std::unique_ptr<Simplifier>> subs;
  std::vector<std::function<void()>> tasks;
  subs.reserve(ranges.size());
  tasks.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    if (lo >= hi) {
      continue;
    }
    auto sub = std::make_unique<Simplifier>(g_, shouldStop_, subOptions);
    sub->regionMode_ = true;
    sub->regionLo_ = lo;
    sub->regionHi_ = hi;
    Simplifier* raw = sub.get();
    subs.push_back(std::move(sub));
    tasks.emplace_back([raw] { raw->regionFixpoint(); });
  }
  // The executor runs every task and rethrows the first exception
  // (ResourceLimitError from a region's vertex budget propagates here).
  options_.regionExecutor(tasks);
  for (const auto& sub : subs) {
    stats_.merge(sub->stats_);
  }
}

bool Simplifier::fullReduce() {
  // Z-form first (types/edges settled, sequential), then the region-parallel
  // spider/id pre-pass, then the regular sequential passes: they run to the
  // same fixpoints from whatever state the pre-pass left, so the reduced
  // diagram is independent of the region count. With parallelRegions <= 1
  // this is exactly the classic toGraphLike() + interiorCliffordSimp().
  toZForm();
  parallelPrepass();
  finishGraphLike();
  interiorCliffordSimp();
  if (!options_.gadgetRules) {
    // Clifford-only mode: stop at the cliffordSimp fixed point.
    cliffordSimp();
    return !stopping();
  }
  pivotGadgetSimp();
  while (!stopping()) {
    cliffordSimp();
    const auto i = gadgetSimp();
    interiorCliffordSimp();
    const auto j = pivotGadgetSimp();
    if (i + j == 0) {
      break;
    }
  }
  return !stopping();
}

bool fullReduce(ZXDiagram& diagram, std::function<bool()> shouldStop,
                SimplifierOptions options) {
  Simplifier simplifier(diagram, std::move(shouldStop), options);
  return simplifier.fullReduce();
}

std::optional<Permutation> extractWirePermutation(const ZXDiagram& diagram) {
  if (diagram.spiderCount() != 0 ||
      diagram.inputs().size() != diagram.outputs().size()) {
    return std::nullopt;
  }
  std::map<Vertex, Qubit> outputIndex;
  for (Qubit i = 0; i < diagram.outputs().size(); ++i) {
    outputIndex[diagram.outputs()[i]] = i;
  }
  std::vector<Qubit> perm(diagram.inputs().size());
  for (Qubit i = 0; i < diagram.inputs().size(); ++i) {
    const Vertex in = diagram.inputs()[i];
    const auto& adj = diagram.neighbors(in);
    if (adj.size() != 1 || adj.front().edges.simple != 1 ||
        adj.front().edges.hadamard != 0) {
      return std::nullopt;
    }
    const auto it = outputIndex.find(adj.front().vertex);
    if (it == outputIndex.end()) {
      return std::nullopt;
    }
    perm[i] = it->second;
  }
  Permutation result{perm};
  if (!result.isValid()) {
    return std::nullopt;
  }
  return result;
}

} // namespace veriqc::zx
