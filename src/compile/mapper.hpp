/// \file mapper.hpp
/// \brief Qubit mapping: placing logical qubits on a device and routing
///        two-qubit gates with SWAP insertion (Sec. 2.2 of the paper).
#pragma once

#include "compile/architecture.hpp"
#include "compile/decompose.hpp"
#include "ir/circuit.hpp"

namespace veriqc::compile {

struct MapperOptions {
  enum class Placement {
    Trivial,        ///< logical i -> physical i
    GraphPlacement, ///< interaction-weighted BFS placement
  };
  Placement placement = Placement::GraphPlacement;
};

/// Map a circuit (single-qubit gates + CNOT only, identity permutations) to
/// the architecture. The result acts on all physical qubits of the device,
/// records the chosen placement in its initial layout, keeps inserted SWAPs
/// as explicit SWAP operations, and records where each logical qubit ends up
/// in its output permutation.
/// \throws CircuitError on unsupported gates or an undersized architecture.
[[nodiscard]] QuantumCircuit mapCircuit(const QuantumCircuit& circuit,
                                        const Architecture& architecture,
                                        const MapperOptions& options = {},
                                        ExpansionCounts* counts = nullptr);

/// The full compilation flow of the case study: decompose to {1q, CX},
/// map to the device, and decompose the inserted SWAPs into CNOTs
/// (mirroring qiskit-terra's O1 output that QCEC's SWAP reconstruction
/// then undoes).
/// When `counts` is given it receives, per unitary gate of the *input*
/// circuit, the number of gates the compiled output realizes it with — the
/// gate correspondence the compilation-flow verification scheme exploits.
[[nodiscard]] QuantumCircuit
compileForArchitecture(const QuantumCircuit& circuit,
                       const Architecture& architecture,
                       const MapperOptions& options = {},
                       ExpansionCounts* counts = nullptr);

} // namespace veriqc::compile
