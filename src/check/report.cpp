#include "check/report.hpp"

#include "fault/fault.hpp"

#include <array>
#include <fstream>
#include <utility>

namespace veriqc::check {

namespace {

/// Key table in enum order; criterionKey/criterionFromKey are generated from
/// this single source so the two directions cannot drift apart.
constexpr std::array<std::pair<EquivalenceCriterion, const char*>, 10>
    kCriterionKeys = {{
        {EquivalenceCriterion::Equivalent, "equivalent"},
        {EquivalenceCriterion::EquivalentUpToGlobalPhase,
         "equivalent_up_to_global_phase"},
        {EquivalenceCriterion::NotEquivalent, "not_equivalent"},
        {EquivalenceCriterion::ProbablyEquivalent, "probably_equivalent"},
        {EquivalenceCriterion::NoInformation, "no_information"},
        {EquivalenceCriterion::Timeout, "timeout"},
        {EquivalenceCriterion::Cancelled, "cancelled"},
        {EquivalenceCriterion::ResourceExhausted, "resource_exhausted"},
        {EquivalenceCriterion::EngineError, "engine_error"},
        {EquivalenceCriterion::NotRun, "not_run"},
    }};

obs::Json serializeCacheStats(const dd::CacheStats& stats) {
  auto j = obs::Json::object();
  j["lookups"] = stats.lookups;
  j["hits"] = stats.hits;
  j["hitRate"] = stats.hitRate();
  j["collisions"] = stats.collisions;
  j["inserts"] = stats.inserts;
  j["invalidations"] = stats.invalidations;
  return j;
}

obs::Json serializeConfiguration(const Configuration& config) {
  auto j = obs::Json::object();
  j["numericalTolerance"] = config.numericalTolerance;
  j["checkTolerance"] = config.checkTolerance;
  j["oracle"] = toString(config.oracle);
  j["reconstructSwaps"] = config.reconstructSwaps;
  j["simulationRuns"] = config.simulationRuns;
  j["stimuliKind"] = sim::toString(config.stimuliKind);
  j["simulationThreads"] = config.simulationThreads;
  j["checkThreads"] = config.checkThreads;
  j["zxParallelRegions"] = config.zxParallelRegions;
  j["seed"] = static_cast<std::int64_t>(config.seed);
  j["timeoutMilliseconds"] =
      static_cast<std::int64_t>(config.timeout.count());
  j["runAlternating"] = config.runAlternating;
  j["runSimulation"] = config.runSimulation;
  j["runZX"] = config.runZX;
  j["zxGadgetRules"] = config.zxGadgetRules;
  j["zxPhaseSnapTolerance"] = config.zxPhaseSnapTolerance;
  j["parallel"] = config.parallel;
  j["runDense"] = config.runDense;
  j["denseMaxQubits"] = config.denseMaxQubits;
  j["maxDDNodes"] = config.maxDDNodes;
  j["maxZXVertices"] = config.maxZXVertices;
  j["maxMemoryMB"] = config.maxMemoryMB;
  j["recordTrace"] = config.recordTrace;
  j["auditLevel"] = static_cast<std::int64_t>(config.auditLevel);
  j["faultPlan"] = config.faultPlan;
  j["engineRetryLimit"] = config.engineRetryLimit;
  j["watchdogMillis"] = config.watchdogMillis;
  j["aggressiveGC"] = config.aggressiveGC;
  return j;
}

obs::Json serializeAttempt(const AttemptRecord& attempt) {
  auto j = obs::Json::object();
  j["engine"] = attempt.engine;
  j["attempt"] = attempt.attempt;
  j["degradation"] = attempt.degradation;
  j["criterion"] = attempt.criterion;
  j["runtimeSeconds"] = attempt.runtimeSeconds;
  j["errorMessage"] = attempt.errorMessage;
  return j;
}

/// Validation helpers: each records problems into `errors` with a JSON-ish
/// path prefix so a failing report pinpoints the offending field.
void requireKind(const obs::Json& value, const obs::Json::Kind kind,
                 const std::string& path, std::vector<std::string>& errors) {
  const auto name = [](const obs::Json::Kind k) {
    switch (k) {
    case obs::Json::Kind::Null:
      return "null";
    case obs::Json::Kind::Boolean:
      return "boolean";
    case obs::Json::Kind::Integer:
      return "integer";
    case obs::Json::Kind::Double:
      return "number";
    case obs::Json::Kind::String:
      return "string";
    case obs::Json::Kind::Array:
      return "array";
    case obs::Json::Kind::Object:
      return "object";
    }
    return "?";
  };
  const bool ok = kind == obs::Json::Kind::Double
                      ? value.isNumber() // integers satisfy "number"
                      : value.kind() == kind;
  if (!ok) {
    errors.push_back(path + ": expected " + name(kind) + ", got " +
                     name(value.kind()));
  }
}

const obs::Json* requireMember(const obs::Json& object,
                               const std::string& path, const char* key,
                               const obs::Json::Kind kind,
                               std::vector<std::string>& errors) {
  if (!object.isObject()) {
    return nullptr;
  }
  const auto* member = object.find(key);
  if (member == nullptr) {
    errors.push_back(path + ": missing required key \"" + key + "\"");
    return nullptr;
  }
  requireKind(*member, kind, path + "." + key, errors);
  return member;
}

void validateEngineRecord(const obs::Json& record, const std::string& path,
                          std::vector<std::string>& errors) {
  requireKind(record, obs::Json::Kind::Object, path, errors);
  if (!record.isObject()) {
    return;
  }
  using K = obs::Json::Kind;
  if (const auto* verdict =
          requireMember(record, path, "verdict", K::String, errors);
      verdict != nullptr && verdict->isString() &&
      !criterionFromKey(verdict->asString()).has_value()) {
    errors.push_back(path + ".verdict: unknown verdict key \"" +
                     verdict->asString() + "\"");
  }
  requireMember(record, path, "method", K::String, errors);
  requireMember(record, path, "runtimeSeconds", K::Double, errors);
  requireMember(record, path, "performedSimulations", K::Integer, errors);
  requireMember(record, path, "hilbertSchmidtFidelity", K::Double, errors);
  requireMember(record, path, "counterexampleStimulus", K::Integer, errors);
  requireMember(record, path, "errorMessage", K::String, errors);
  if (const auto* zx = requireMember(record, path, "zx", K::Object, errors);
      zx != nullptr && zx->isObject()) {
    requireMember(*zx, path + ".zx", "rewrites", K::Integer, errors);
    requireMember(*zx, path + ".zx", "remainingSpiders", K::Integer, errors);
    if (const auto* rules =
            requireMember(*zx, path + ".zx", "rules", K::Array, errors);
        rules != nullptr && rules->isArray()) {
      for (std::size_t i = 0; i < rules->size(); ++i) {
        const auto rulePath =
            path + ".zx.rules[" + std::to_string(i) + "]";
        const auto& rule = rules->asArray()[i];
        requireKind(rule, K::Object, rulePath, errors);
        if (rule.isObject()) {
          requireMember(rule, rulePath, "rule", K::String, errors);
          requireMember(rule, rulePath, "candidates", K::Integer, errors);
          requireMember(rule, rulePath, "matches", K::Integer, errors);
          requireMember(rule, rulePath, "rewrites", K::Integer, errors);
          requireMember(rule, rulePath, "seconds", K::Double, errors);
        }
      }
    }
  }
  if (const auto* dd = requireMember(record, path, "dd", K::Object, errors);
      dd != nullptr && dd->isObject()) {
    requireMember(*dd, path + ".dd", "peakNodes", K::Integer, errors);
    for (const char* cache : {"computeCache", "gateCache"}) {
      if (const auto* stats =
              requireMember(*dd, path + ".dd", cache, K::Object, errors);
          stats != nullptr && stats->isObject()) {
        const auto cachePath = path + ".dd." + cache;
        requireMember(*stats, cachePath, "lookups", K::Integer, errors);
        requireMember(*stats, cachePath, "hits", K::Integer, errors);
        requireMember(*stats, cachePath, "hitRate", K::Double, errors);
        requireMember(*stats, cachePath, "collisions", K::Integer, errors);
        requireMember(*stats, cachePath, "inserts", K::Integer, errors);
        requireMember(*stats, cachePath, "invalidations", K::Integer,
                      errors);
      }
    }
  }
  if (const auto* trace =
          requireMember(record, path, "sizeTrace", K::Array, errors);
      trace != nullptr && trace->isArray()) {
    for (std::size_t i = 0; i < trace->size(); ++i) {
      requireKind(trace->asArray()[i], K::Integer,
                  path + ".sizeTrace[" + std::to_string(i) + "]", errors);
    }
  }
  if (const auto* counters =
          requireMember(record, path, "counters", K::Object, errors);
      counters != nullptr && counters->isObject()) {
    for (const auto& [name, value] : counters->asObject()) {
      requireKind(value, K::Double, path + ".counters." + name, errors);
    }
  }
  // Degradation-ladder fields are optional (reports predating the ladder
  // lack them) but type-checked when present.
  if (const auto* degradation = record.find("degradation");
      degradation != nullptr) {
    requireKind(*degradation, K::String, path + ".degradation", errors);
  }
  if (const auto* attempts = record.find("attempts"); attempts != nullptr) {
    requireKind(*attempts, K::Array, path + ".attempts", errors);
    if (attempts->isArray()) {
      for (std::size_t i = 0; i < attempts->size(); ++i) {
        const auto attemptPath = path + ".attempts[" + std::to_string(i) + "]";
        const auto& attempt = attempts->asArray()[i];
        requireKind(attempt, K::Object, attemptPath, errors);
        if (attempt.isObject()) {
          requireMember(attempt, attemptPath, "engine", K::String, errors);
          requireMember(attempt, attemptPath, "attempt", K::Integer, errors);
          requireMember(attempt, attemptPath, "degradation", K::String,
                        errors);
          requireMember(attempt, attemptPath, "criterion", K::String, errors);
          requireMember(attempt, attemptPath, "runtimeSeconds", K::Double,
                        errors);
          requireMember(attempt, attemptPath, "errorMessage", K::String,
                        errors);
        }
      }
    }
  }
}

} // namespace

std::string criterionKey(const EquivalenceCriterion criterion) {
  for (const auto& [value, key] : kCriterionKeys) {
    if (value == criterion) {
      return key;
    }
  }
  return "unknown";
}

obs::Json serializeCounters(const obs::CounterRegistry& counters) {
  auto j = obs::Json::object();
  // entries() is a std::map, so the member order is sorted and stable.
  for (const auto& [name, counter] : counters.entries()) {
    j[name] = counter.value;
  }
  return j;
}

std::optional<EquivalenceCriterion> criterionFromKey(std::string_view key) {
  for (const auto& [value, name] : kCriterionKeys) {
    if (key == name) {
      return value;
    }
  }
  return std::nullopt;
}

obs::Json serializeResult(const Result& result) {
  auto j = obs::Json::object();
  j["method"] = result.method;
  j["verdict"] = criterionKey(result.criterion);
  j["runtimeSeconds"] = result.runtimeSeconds;
  j["performedSimulations"] = result.performedSimulations;
  j["hilbertSchmidtFidelity"] = result.hilbertSchmidtFidelity;
  j["counterexampleStimulus"] = result.counterexampleStimulus;
  j["errorMessage"] = result.errorMessage;
  auto zx = obs::Json::object();
  zx["rewrites"] = result.rewrites;
  zx["remainingSpiders"] = result.remainingSpiders;
  auto rules = obs::Json::array();
  for (const auto& stat : result.zxRuleStats) {
    auto rule = obs::Json::object();
    rule["rule"] = stat.rule;
    rule["candidates"] = stat.candidates;
    rule["matches"] = stat.matches;
    rule["rewrites"] = stat.rewrites;
    rule["seconds"] = stat.seconds;
    rules.push_back(std::move(rule));
  }
  zx["rules"] = std::move(rules);
  j["zx"] = std::move(zx);
  auto dd = obs::Json::object();
  dd["peakNodes"] = result.peakNodes;
  dd["computeCache"] = serializeCacheStats(result.computeCacheStats);
  dd["gateCache"] = serializeCacheStats(result.gateCacheStats);
  j["dd"] = std::move(dd);
  auto trace = obs::Json::array();
  for (const auto size : result.sizeTrace) {
    trace.push_back(size);
  }
  j["sizeTrace"] = std::move(trace);
  j["counters"] = serializeCounters(result.counters);
  // Ladder fields are additive and only-when-present: records of runs that
  // settled on the first attempt stay identical to pre-ladder reports.
  if (!result.degradation.empty()) {
    j["degradation"] = result.degradation;
  }
  if (!result.attempts.empty()) {
    auto attempts = obs::Json::array();
    for (const auto& attempt : result.attempts) {
      attempts.push_back(serializeAttempt(attempt));
    }
    j["attempts"] = std::move(attempts);
  }
  return j;
}

obs::Json buildRunReport(const Result& combined,
                         const std::vector<Result>& engines,
                         const Configuration& config,
                         const std::vector<obs::PhaseSpan>& phases) {
  // Reporting is the last failure domain of a run: a throw here must lose
  // only the report, never the verdict the caller already holds.
  VERIQC_FAULT_POINT(fault::points::kCheckReport, fault::FaultKind::Runtime);
  auto report = obs::Json::object();
  report["schema"] = kReportSchemaId;
  report["generator"] = "veriqc";
  report["configuration"] = serializeConfiguration(config);
  report["verdict"] = serializeResult(combined);
  auto engineArray = obs::Json::array();
  // Aggregate each engine's counters into the top-level counters object
  // twice: flat (run-wide totals: Sum counters add up, Max counters take
  // the run-wide maximum) and under an "engine:<name>/" prefix. The prefix
  // is what keeps concurrent engines attributable — with several DD engines
  // racing, a flat "dd.*" sum cannot say which engine did the work.
  obs::CounterRegistry aggregated;
  aggregated.merge(combined.counters);
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const auto& result = engines[i];
    engineArray.push_back(serializeResult(result));
    aggregated.merge(result.counters);
    if (!result.counters.empty()) {
      const std::string slot =
          result.method.empty() ? "slot" + std::to_string(i) : result.method;
      aggregated.merge(result.counters, "engine:" + slot + "/");
    }
  }
  report["engines"] = std::move(engineArray);
  auto phaseArray = obs::Json::array();
  for (const auto& span : phases) {
    auto phase = obs::Json::object();
    phase["name"] = span.name;
    phase["startSeconds"] = span.startSeconds;
    phase["durationSeconds"] = span.durationSeconds;
    phaseArray.push_back(std::move(phase));
  }
  report["phases"] = std::move(phaseArray);
  report["counters"] = serializeCounters(aggregated);
  auto resources = obs::Json::object();
  resources["peakResidentSetKB"] = combined.peakResidentSetKB;
  resources["processPeakResidentSetKB"] = combined.processPeakResidentSetKB;
  auto limited = obs::Json::array();
  for (const auto& engine : combined.resourceLimitedEngines) {
    limited.push_back(engine);
  }
  resources["resourceLimitedEngines"] = std::move(limited);
  report["resources"] = std::move(resources);
  return report;
}

obs::Json buildRunReport(const EquivalenceCheckingManager& manager,
                         const Result& combined, const Configuration& config) {
  return buildRunReport(combined, manager.engineResults(), config,
                        manager.phases().spans());
}

std::vector<std::string> validateRunReport(const obs::Json& report) {
  std::vector<std::string> errors;
  using K = obs::Json::Kind;
  requireKind(report, K::Object, "$", errors);
  if (!report.isObject()) {
    return errors;
  }
  if (const auto* schema =
          requireMember(report, "$", "schema", K::String, errors);
      schema != nullptr && schema->isString() &&
      schema->asString() != kReportSchemaId) {
    errors.push_back("$.schema: expected \"" + std::string(kReportSchemaId) +
                     "\", got \"" + schema->asString() + "\"");
  }
  requireMember(report, "$", "generator", K::String, errors);
  requireMember(report, "$", "configuration", K::Object, errors);
  if (const auto* verdict =
          requireMember(report, "$", "verdict", K::Object, errors);
      verdict != nullptr) {
    validateEngineRecord(*verdict, "$.verdict", errors);
  }
  if (const auto* engines =
          requireMember(report, "$", "engines", K::Array, errors);
      engines != nullptr && engines->isArray()) {
    for (std::size_t i = 0; i < engines->size(); ++i) {
      validateEngineRecord(engines->asArray()[i],
                           "$.engines[" + std::to_string(i) + "]", errors);
    }
  }
  if (const auto* phases =
          requireMember(report, "$", "phases", K::Array, errors);
      phases != nullptr && phases->isArray()) {
    for (std::size_t i = 0; i < phases->size(); ++i) {
      const auto path = "$.phases[" + std::to_string(i) + "]";
      const auto& span = phases->asArray()[i];
      requireKind(span, K::Object, path, errors);
      if (span.isObject()) {
        requireMember(span, path, "name", K::String, errors);
        requireMember(span, path, "startSeconds", K::Double, errors);
        requireMember(span, path, "durationSeconds", K::Double, errors);
      }
    }
  }
  if (const auto* counters =
          requireMember(report, "$", "counters", K::Object, errors);
      counters != nullptr && counters->isObject()) {
    for (const auto& [name, value] : counters->asObject()) {
      requireKind(value, K::Double, "$.counters." + name, errors);
    }
  }
  if (const auto* resources =
          requireMember(report, "$", "resources", K::Object, errors);
      resources != nullptr && resources->isObject()) {
    requireMember(*resources, "$.resources", "peakResidentSetKB", K::Integer,
                  errors);
    // Additive within v1 (older reports lack it): type-checked when present.
    if (const auto* processPeak =
            resources->find("processPeakResidentSetKB");
        processPeak != nullptr) {
      requireKind(*processPeak, K::Integer,
                  "$.resources.processPeakResidentSetKB", errors);
    }
    if (const auto* limited =
            requireMember(*resources, "$.resources",
                          "resourceLimitedEngines", K::Array, errors);
        limited != nullptr && limited->isArray()) {
      for (std::size_t i = 0; i < limited->size(); ++i) {
        requireKind(limited->asArray()[i], K::String,
                    "$.resources.resourceLimitedEngines[" +
                        std::to_string(i) + "]",
                    errors);
      }
    }
  }
  // The veriqcd front-end attaches a "job" object naming the submitted job
  // and its admission outcome. Optional (CLI reports lack it) but fully
  // shape-checked when present.
  if (const auto* job = report.find("job"); job != nullptr) {
    requireKind(*job, K::Object, "$.job", errors);
    if (job->isObject()) {
      requireMember(*job, "$.job", "id", K::String, errors);
      requireMember(*job, "$.job", "admitted", K::Boolean, errors);
      requireMember(*job, "$.job", "reason", K::String, errors);
      requireMember(*job, "$.job", "detail", K::String, errors);
    }
  }
  return errors;
}

void writeRunReport(const obs::Json& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open report file for writing: " + path);
  }
  out << report.dump(2) << '\n';
  if (!out) {
    throw std::runtime_error("failed writing report file: " + path);
  }
}

} // namespace veriqc::check
