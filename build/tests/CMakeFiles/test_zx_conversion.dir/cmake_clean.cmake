file(REMOVE_RECURSE
  "CMakeFiles/test_zx_conversion.dir/test_zx_conversion.cpp.o"
  "CMakeFiles/test_zx_conversion.dir/test_zx_conversion.cpp.o.d"
  "test_zx_conversion"
  "test_zx_conversion.pdb"
  "test_zx_conversion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zx_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
