/// \file phase_timer.hpp
/// \brief Span-style phase timer for run records.
///
/// A run is decomposed into named, possibly overlapping spans
/// (parse -> prepare -> per-engine -> combine); each span records its start
/// offset and duration relative to the timer's origin. Engine threads record
/// concurrently, so the span list is mutex-guarded. The report layer
/// serializes spans into the `phases` array of `veriqc-report/v1`.
#pragma once

#include "support/mutex.hpp"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace veriqc::obs {

/// One named phase: offsets are seconds relative to the timer origin.
struct PhaseSpan {
  std::string name;
  double startSeconds = 0.0;
  double durationSeconds = 0.0;
};

class PhaseTimer {
public:
  using Clock = std::chrono::steady_clock;

  PhaseTimer() : origin_(Clock::now()) {}

  /// RAII guard: records the span from its construction to its destruction
  /// (or to the explicit finish() call, whichever comes first).
  class Scope {
  public:
    Scope(PhaseTimer& timer, std::string name)
        : timer_(&timer), name_(std::move(name)), start_(Clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& other) noexcept
        : timer_(other.timer_), name_(std::move(other.name_)),
          start_(other.start_) {
      other.timer_ = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    ~Scope() { finish(); }

    /// Record the span now; further calls (and destruction) are no-ops.
    void finish() {
      if (timer_ != nullptr) {
        timer_->recordSince(name_, start_);
        timer_ = nullptr;
      }
    }

  private:
    PhaseTimer* timer_;
    std::string name_;
    Clock::time_point start_;
  };

  /// Start a span now; it is recorded when the returned Scope ends.
  [[nodiscard]] Scope scope(std::string name) {
    return Scope(*this, std::move(name));
  }

  /// Record a span with explicit offsets (used by tests and golden files).
  void record(std::string name, const double startSeconds,
              const double durationSeconds) {
    const support::LockGuard lock(mutex_);
    spans_.push_back({std::move(name), startSeconds, durationSeconds});
  }

  /// Drop all recorded spans and restart the origin at now.
  void restart() {
    const support::LockGuard lock(mutex_);
    spans_.clear();
    origin_ = Clock::now();
  }

  [[nodiscard]] std::vector<PhaseSpan> spans() const {
    const support::LockGuard lock(mutex_);
    return spans_;
  }

private:
  void recordSince(const std::string& name, const Clock::time_point start) {
    const auto end = Clock::now();
    const support::LockGuard lock(mutex_);
    spans_.push_back(
        {name, std::chrono::duration<double>(start - origin_).count(),
         std::chrono::duration<double>(end - start).count()});
  }

  mutable support::Mutex mutex_;
  Clock::time_point origin_ VERIQC_GUARDED_BY(mutex_);
  std::vector<PhaseSpan> spans_ VERIQC_GUARDED_BY(mutex_);
};

} // namespace veriqc::obs
