#include "check/task_pool.hpp"

#include "fault/fault.hpp"

#include <chrono>
#include <utility>

namespace veriqc::check {

// --- TaskGroup ---------------------------------------------------------------

TaskGroup::TaskGroup(TaskPool& pool, std::function<bool()> stop,
                     obs::PhaseTimer* phases)
    : pool_(pool), stop_(std::move(stop)), phases_(phases) {}

TaskGroup::~TaskGroup() {
  // A group must never outlive its tasks: drain without rethrowing (wait()
  // is the reporting path; the destructor only guarantees quiescence).
  cancel();
  pool_.helpUntilDone(*this);
}

void TaskGroup::submit(std::string label, std::function<void(std::size_t)> fn) {
  {
    const support::LockGuard lock(mutex_);
    ++pending_;
  }
  try {
    pool_.enqueue({this, std::move(fn), std::move(label)});
  } catch (...) {
    // Roll the count back, or wait()/~TaskGroup would block forever on a
    // task that never reached a queue.
    const support::LockGuard lock(mutex_);
    if (--pending_ == 0) {
      done_.notify_all();
    }
    throw;
  }
}

void TaskGroup::cancel() noexcept {
  const support::LockGuard lock(mutex_);
  cancelled_ = true;
}

bool TaskGroup::cancelled() const noexcept {
  const support::LockGuard lock(mutex_);
  return cancelled_;
}

void TaskGroup::wait() {
  pool_.helpUntilDone(*this);
  const support::LockGuard lock(mutex_);
  if (firstError_) {
    auto error = std::exchange(firstError_, nullptr);
    std::rethrow_exception(error);
  }
}

std::size_t TaskGroup::skippedTasks() const noexcept {
  const support::LockGuard lock(mutex_);
  return skipped_;
}

std::size_t TaskGroup::suppressedExceptions() const noexcept {
  const support::LockGuard lock(mutex_);
  return suppressedExceptions_;
}

// --- TaskPool ----------------------------------------------------------------

TaskPool::TaskPool(const std::size_t slots) {
  const std::size_t count = slots == 0 ? 1 : slots;
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  // Slot 0 belongs to the submitting thread (it participates via wait()).
  workers_.reserve(count - 1);
  for (std::size_t slot = 1; slot < count; ++slot) {
    workers_.emplace_back([this, slot] { workerLoop(slot); });
  }
}

TaskPool::~TaskPool() {
  {
    const support::LockGuard lock(sleepMutex_);
    shutdown_ = true;
  }
  work_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::size_t TaskPool::resolveSlots(const std::size_t configured) {
  if (configured != 0) {
    return configured;
  }
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  return hw == 0 ? 1 : hw;
}

void TaskPool::enqueue(Task task) {
  std::size_t target = 0;
  {
    const support::LockGuard lock(sleepMutex_);
    target = nextQueue_;
    nextQueue_ = (nextQueue_ + 1) % queues_.size();
  }
  {
    auto& queue = *queues_[target];
    const support::LockGuard lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  // Notify while holding sleepMutex_: a worker's empty-recheck and its
  // wait() form one critical section under sleepMutex_, so an unlocked
  // notify could fire exactly between them (push not yet visible at the
  // recheck, notify gone before the wait) and the worker would sleep
  // through a queued task. Taking the mutex forces this notify to land
  // either before the recheck (which then sees the task) or after the
  // worker started waiting (which then receives it).
  {
    const support::LockGuard lock(sleepMutex_);
    work_.notify_all();
  }
}

bool TaskPool::tryTake(const std::size_t preferred, Task& out) {
  // Own deque first (front: submission order), then steal from the back of
  // the other deques — the classic split that keeps owners cache-local and
  // thieves out of their way.
  {
    auto& queue = *queues_[preferred];
    const support::LockGuard lock(queue.mutex);
    if (!queue.tasks.empty()) {
      out = std::move(queue.tasks.front());
      queue.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    auto& victim = *queues_[(preferred + i) % queues_.size()];
    const support::LockGuard lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void TaskPool::runTask(Task& task, const std::size_t slot) {
  TaskGroup& group = *task.group;
  bool skip = false;
  {
    const support::LockGuard lock(group.mutex_);
    skip = group.cancelled_;
  }
  // The stop token is polled outside the group mutex: tokens are arbitrary
  // callables (deadline checks, atomic loads) and must not run under a lock.
  if (!skip && group.stop_ && group.stop_()) {
    skip = true;
  }
  if (!skip) {
    try {
      VERIQC_FAULT_POINT(fault::points::kPoolTaskStart,
                         fault::FaultKind::Runtime);
      if (group.phases_ != nullptr) {
        auto span = group.phases_->scope(task.label);
        task.fn(slot);
      } else {
        task.fn(slot);
      }
    } catch (...) {
      const support::LockGuard lock(group.mutex_);
      if (!group.firstError_) {
        group.firstError_ = std::current_exception();
      } else {
        // Later exceptions lose the rethrow race; count them so callers can
        // surface the loss instead of silently dropping it.
        ++group.suppressedExceptions_;
      }
      // A failed task poisons the whole group: there is no point running
      // its siblings against state the exception may have abandoned.
      group.cancelled_ = true;
    }
  }
  {
    const support::LockGuard lock(group.mutex_);
    if (skip) {
      ++group.skipped_;
    }
    if (--group.pending_ == 0) {
      // Notify while still holding the mutex: the waiter is free to destroy
      // the group the moment it observes pending_ == 0 (wait()/~TaskGroup
      // return paths), so the condition variable must not be touched after
      // this lock is released.
      group.done_.notify_all();
    }
  }
}

void TaskPool::workerLoop(const std::size_t slot) {
  while (true) {
    Task task;
    if (tryTake(slot, task)) {
      runTask(task, slot);
      continue;
    }
    support::LockGuard lock(sleepMutex_);
    if (shutdown_) {
      return;
    }
    // Re-check under the lock: an enqueue between the failed tryTake and
    // this wait would otherwise be missed (its notify already fired).
    bool anyWork = false;
    for (const auto& queuePtr : queues_) {
      auto& queue = *queuePtr;
      const support::LockGuard queueLock(queue.mutex);
      if (!queue.tasks.empty()) {
        anyWork = true;
        break;
      }
    }
    if (anyWork) {
      continue;
    }
    work_.wait(lock);
  }
}

void TaskPool::helpUntilDone(TaskGroup& group) {
  while (true) {
    {
      const support::LockGuard lock(group.mutex_);
      if (group.pending_ == 0) {
        return;
      }
    }
    Task task;
    if (tryTake(0, task)) {
      // The helper may pick up tasks of *other* groups too — work is work,
      // and draining a sibling group can only speed up our own turn.
      runTask(task, 0);
      continue;
    }
    // Nothing to steal: our remaining tasks are running on workers. Block
    // until the group count hits zero.
    support::LockGuard lock(group.mutex_);
    if (group.pending_ == 0) {
      return;
    }
    group.done_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

} // namespace veriqc::check
